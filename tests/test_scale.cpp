// Scale regression tests for the arena/CSR DFG core: deep chains and wide
// fan-outs that used to crash or go quadratic, counter linearity in N,
// job-count invariance, and the cold-graph concurrency hammer that pins
// down the eager-freeze fix for the old lazy successor cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "analysis/dataflow/engine.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "dfg/builder.h"
#include "dfg/transforms.h"
#include "explore/explore.h"
#include "sched/timeframes.h"
#include "trace/trace.h"
#include "util/strings.h"
#include "workloads/random_dfg.h"

namespace mframe {
namespace {

using dfg::NodeId;
using dfg::OpKind;

/// a0 = in + in; a_k = a_{k-1} + in — a dependency chain `ops` deep.
dfg::Dfg deepChain(int ops) {
  dfg::Builder b("chain");
  const NodeId in = b.input("in");
  NodeId prev = in;
  for (int i = 0; i < ops; ++i)
    prev = b.op(OpKind::Add, {prev, in}, util::format("a%d", i));
  b.output(prev, "out");
  return std::move(b).build();
}

/// One producer operation feeding `fans` consumers.
dfg::Dfg wideFanout(int fans) {
  dfg::Builder b("fanout");
  const NodeId x = b.input("x");
  const NodeId y = b.input("y");
  const NodeId hub = b.op(OpKind::Add, {x, y}, "hub");
  NodeId last = hub;
  for (int i = 0; i < fans; ++i)
    last = b.op(OpKind::Add, {hub, y}, util::format("f%d", i));
  b.output(last, "out");
  return std::move(b).build();
}

/// Longest-path depth domain: the dataflow engine's one-sweep DAG case.
struct DepthDomain {
  using Value = int;
  Value initial(const dfg::Node&) const { return 0; }
  Value transfer(const dfg::Node&, const std::vector<Value>& deps) const {
    int d = 0;
    for (int v : deps) d = std::max(d, v + 1);
    return d;
  }
  Value widen(const Value&, const Value& next) const { return next; }
};

std::uint64_t counter(trace::Counter c) { return trace::counterValue(c); }

/// Counters are off by default (bump() is a no-op); flip them on for the
/// linearity assertions and restore the previous state on exit.
struct CounterScope {
  bool prev = trace::countersEnabled();
  CounterScope() { trace::enableCounters(true); }
  ~CounterScope() { trace::enableCounters(prev); }
};

// ---------------------------------------------------------------------------
// Deep chain: 10^5 ops. Building, topoOrder, timeframes, cone extraction and
// the dataflow worklist must all complete iteratively (the old recursive /
// lazy-cache paths crashed or went quadratic here) and do linear work.

TEST(Scale, DeepChainCoreAlgorithmsAreLinear) {
  const CounterScope counters;
  constexpr int kOps = 100000;
  const dfg::Dfg g = deepChain(kOps);
  ASSERT_TRUE(g.frozen());
  ASSERT_EQ(g.size(), static_cast<std::size_t>(kOps) + 1);

  const auto topo = g.topoOrder();
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->size(), g.size());

  sched::Constraints c;
  const auto tf = sched::computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->criticalSteps(), kOps);
  // The chain leaves no mobility anywhere.
  EXPECT_EQ(tf->asap(g.findByName("a0")), 1);
  EXPECT_EQ(tf->alap(g.findByName("a0")), 1);
  const NodeId mid = g.findByName(util::format("a%d", kOps / 2));
  EXPECT_EQ(tf->asap(mid), kOps / 2 + 1);

  // Cone extraction around the middle of the chain: 2*hops + 1 members.
  const int hops = 16;
  const auto cut = dfg::extractCone(g, {mid}, hops);
  EXPECT_EQ(cut.coneOps, static_cast<std::size_t>(2 * hops + 1));
  EXPECT_FALSE(cut.cone.validate().has_value());

  // The worklist engine reaches the fixpoint in exactly one sweep: visits ==
  // nodes, and the counter advances by exactly that (linear, not quadratic).
  const std::uint64_t before = counter(trace::Counter::DataflowWorklistIterations);
  const auto fix = analysis::dataflow::solve(
      g, DepthDomain{}, analysis::dataflow::Direction::Forward);
  EXPECT_EQ(fix.visits, static_cast<int>(g.size()));
  EXPECT_EQ(fix.values.back(), kOps);
  EXPECT_EQ(counter(trace::Counter::DataflowWorklistIterations) - before,
            static_cast<std::uint64_t>(g.size()));
}

// ---------------------------------------------------------------------------
// Wide fan-out: a 10^4-consumer hub. succs()/opSuccs() spans, timeframes and
// cone extraction must handle the degree-10^4 node without blowup.

TEST(Scale, WideFanoutHubIsHandledLinearly) {
  constexpr int kFans = 10000;
  const dfg::Dfg g = wideFanout(kFans);
  const NodeId hub = g.findByName("hub");
  ASSERT_NE(hub, dfg::kNoNode);
  // hub feeds every fan op plus the chained `last` references: kFans edges.
  EXPECT_EQ(g.succs(hub).size(), static_cast<std::size_t>(kFans));
  EXPECT_EQ(g.opSuccs(hub).size(), static_cast<std::size_t>(kFans));

  const auto topo = g.topoOrder();
  ASSERT_TRUE(topo.has_value());

  sched::Constraints c;
  const auto tf = sched::computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->criticalSteps(), 2);  // hub, then all fans in parallel

  // One hop from the hub reaches the hub plus every direct consumer.
  const auto cut = dfg::extractCone(g, {hub}, 1);
  EXPECT_EQ(cut.coneOps, static_cast<std::size_t>(kFans) + 1);

  const auto fix = analysis::dataflow::solve(
      g, DepthDomain{}, analysis::dataflow::Direction::Forward);
  EXPECT_EQ(fix.visits, static_cast<int>(g.size()));
}

// ---------------------------------------------------------------------------
// Counter linearity: doubling N at most doubles (within slack) the dataflow
// visits and the CSR edge count on the structured random workloads.

TEST(Scale, CountersGrowLinearlyInN) {
  const CounterScope counters;
  for (const auto topo : {workloads::DfgTopology::Conv,
                          workloads::DfgTopology::Lstm,
                          workloads::DfgTopology::Transformer}) {
    std::uint64_t visits[2];
    std::uint64_t edges[2];
    const int sizes[2] = {20000, 40000};
    for (int i = 0; i < 2; ++i) {
      workloads::RandomDfgOptions opt;
      opt.topology = topo;
      opt.numOps = sizes[i];
      opt.layerWidth = 64;
      opt.seed = 7;
      const std::uint64_t e0 = counter(trace::Counter::DfgCsrEdges);
      const dfg::Dfg g = workloads::randomDfg(opt);
      edges[i] = counter(trace::Counter::DfgCsrEdges) - e0;
      const std::uint64_t v0 =
          counter(trace::Counter::DataflowWorklistIterations);
      analysis::dataflow::solve(g, DepthDomain{},
                                analysis::dataflow::Direction::Forward);
      visits[i] = counter(trace::Counter::DataflowWorklistIterations) - v0;
    }
    // Linear growth: 2x the ops must stay within 2.2x the work. A quadratic
    // term would show up as a ratio near 4.
    EXPECT_LE(visits[1], visits[0] * 22 / 10) << "topology " << static_cast<int>(topo);
    EXPECT_GE(visits[1], visits[0]) << "topology " << static_cast<int>(topo);
    EXPECT_LE(edges[1], edges[0] * 22 / 10) << "topology " << static_cast<int>(topo);
  }
}

// ---------------------------------------------------------------------------
// Job-count invariance: the explorer sweeping the same design with 1 or 4
// workers must do identical per-design work — the same schedules, the same
// dfg.*, mfsa.* and liapunov.* counter deltas.

TEST(Scale, ExploreCountersAreJobCountInvariant) {
  const CounterScope counters;
  workloads::RandomDfgOptions opt;
  opt.topology = workloads::DfgTopology::Conv;
  opt.numOps = 600;
  opt.layerWidth = 16;
  opt.seed = 3;
  const dfg::Dfg g = workloads::randomDfg(opt);
  const auto lib = celllib::ncrLike();

  explore::SweepSpec spec = explore::SweepSpec::defaults();
  // One step budget is enough to exercise every worker; the full 4-step
  // axis only multiplies runtime.
  sched::Constraints probe;
  spec.steps = {sched::computeTimeFrames(g, probe)->criticalSteps() + 1};

  const auto deltas = [&](int jobs) {
    trace::resetCounters();
    const auto r = explore::explore(g, lib, spec, jobs);
    EXPECT_GT(r.feasibleCount, 0);
    return std::vector<std::uint64_t>{
        counter(trace::Counter::MfsaCandidates),
        counter(trace::Counter::MfsaCommits),
        counter(trace::Counter::MfsaRestarts),
        counter(trace::Counter::LiapunovUpdates),
        counter(trace::Counter::DfgFreezes),
        counter(trace::Counter::DfgCsrEdges),
    };
  };
  const auto serial = deltas(1);
  const auto parallel = deltas(4);
  EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// MFS frontier-vs-exhaustive equivalence: the dominance pruning is proved
// exact, so both modes must produce identical schedules on a graph large
// enough to exercise multicycle ops, restarts and both objective modes.

TEST(Scale, MfsFrontierMatchesExhaustive) {
  workloads::RandomDfgOptions wopt;
  wopt.topology = workloads::DfgTopology::Transformer;
  wopt.numOps = 800;
  wopt.layerWidth = 24;
  wopt.twoCyclePercent = 30;
  wopt.seed = 11;
  const dfg::Dfg g = workloads::randomDfg(wopt);

  for (const auto mode : {core::MfsLiapunov::Mode::TimeConstrained,
                          core::MfsLiapunov::Mode::ResourceConstrained}) {
    core::MfsOptions opt;
    opt.mode = mode;
    if (mode == core::MfsLiapunov::Mode::TimeConstrained) {
      sched::Constraints probe;
      opt.constraints.timeSteps =
          sched::computeTimeFrames(g, probe)->criticalSteps() + 2;
    } else {
      opt.constraints.fuLimit[dfg::FuType::Multiplier] = 6;
      opt.constraints.fuLimit[dfg::FuType::Adder] = 8;
    }
    opt.frameMode = core::MoveFrameMode::Exhaustive;
    const auto ex = core::runMfs(g, opt);
    opt.frameMode = core::MoveFrameMode::Frontier;
    const auto fr = core::runMfs(g, opt);

    ASSERT_TRUE(ex.feasible) << ex.error;
    ASSERT_TRUE(fr.feasible) << fr.error;
    EXPECT_EQ(ex.steps, fr.steps);
    EXPECT_EQ(ex.fuCount, fr.fuCount);
    EXPECT_EQ(ex.restarts, fr.restarts);
    for (NodeId id : g.operations()) {
      ASSERT_EQ(ex.schedule.stepOf(id), fr.schedule.stepOf(id)) << g.node(id).name;
      ASSERT_EQ(ex.schedule.columnOf(id), fr.schedule.columnOf(id)) << g.node(id).name;
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency: 8 threads hammer the adjacency spans of a freshly built
// (cold) shared graph. The old lazy succCache_/succValid_ made this a data
// race on first access; eager freeze makes it read-only. Run under TSan in
// CI (DfgConcurrency* is in the sanitizer filter).

TEST(DfgConcurrency, SuccsHammerEightThreadsColdGraph) {
  workloads::RandomDfgOptions opt;
  opt.topology = workloads::DfgTopology::Conv;
  opt.numOps = 20000;
  opt.layerWidth = 32;
  opt.seed = 5;
  const dfg::Dfg g = workloads::randomDfg(opt);  // cold: no accessor touched

  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> agreed{0};
  std::vector<std::uint64_t> sums(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g, &sums, t] {
      std::uint64_t sum = 0;
      for (NodeId id = 0; id < g.size(); ++id) {
        for (NodeId s : g.succs(id)) sum += s;
        for (NodeId s : g.opSuccs(id)) sum += s ^ 1u;
        for (NodeId p : g.opPreds(id)) sum += p ^ 2u;
      }
      sums[static_cast<std::size_t>(t)] = sum;
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(sums[0], sums[static_cast<std::size_t>(t)]);
    ++agreed;
  }
  EXPECT_GT(sums[0], 0u);
  EXPECT_EQ(agreed.load(), static_cast<std::uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace mframe
