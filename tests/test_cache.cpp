// The synthesis cache (src/cache/): fingerprint invariance, entry
// encode/replay fidelity, hit/miss/invalidation behavior of the cached
// entry points, incremental resynthesis, and the determinism of the
// cache.* counters across worker-thread counts.
#include "cache/resynth.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/fingerprint.h"
#include "cache/store.h"
#include "celllib/ncr_like.h"
#include "explore/explore.h"
#include "dfg/parser.h"
#include "sched/schedule_io.h"
#include "sched/verify.h"
#include "trace/trace.h"

namespace mframe::cache {
namespace {

constexpr const char* kDesign = R"(dfg tcache
input a
input b
input c
op mul t1 a b
op mul t2 b c
op add t3 t1 t2
op sub t4 t3 c
output out t4
)";

// Same dataflow with the operands of the commutative adder swapped.
constexpr const char* kDesignSwapped = R"(dfg tcache
input a
input b
input c
op mul t1 a b
op mul t2 b c
op add t3 t2 t1
op sub t4 t3 c
output out t4
)";

// One operation's kind edited (sub -> add): same signal names, new content.
constexpr const char* kDesignEdited = R"(dfg tcache
input a
input b
input c
op mul t1 a b
op mul t2 b c
op add t3 t1 t2
op add t4 t3 c
output out t4
)";

std::string freshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "mframe_cache_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Installs a cache + enables counters for the scope of one test.
struct CacheSession {
  SynthCache store;
  explicit CacheSession(const std::string& tag) : store(freshDir(tag)) {
    trace::enableCounters(true);
    trace::resetCounters();
    setActiveCache(&store);
  }
  ~CacheSession() {
    setActiveCache(nullptr);
    trace::enableCounters(false);
  }
};

std::uint64_t count(trace::Counter c) { return trace::counterValue(c); }

core::MfsOptions mfsOpt(int steps = 4) {
  core::MfsOptions o;
  o.constraints.timeSteps = steps;
  return o;
}

core::MfsaOptions mfsaOpt(int steps = 4) {
  core::MfsaOptions o;
  o.constraints.timeSteps = steps;
  return o;
}

TEST(CacheFingerprint, CommutativeOperandSwapIsInvariant) {
  const dfg::Dfg a = dfg::parse(kDesign);
  const dfg::Dfg b = dfg::parse(kDesignSwapped);
  EXPECT_EQ(fingerprintDfg(a), fingerprintDfg(b));
}

TEST(CacheFingerprint, ContentChangesTheDigest) {
  const dfg::Dfg a = dfg::parse(kDesign);
  const dfg::Dfg b = dfg::parse(kDesignEdited);
  EXPECT_NE(fingerprintDfg(a), fingerprintDfg(b));

  dfg::Dfg c = dfg::parse(kDesign);
  c.mutableNode(c.findByName("t1")).cycles = 2;
  c.freeze();
  EXPECT_NE(fingerprintDfg(a), fingerprintDfg(c));
}

TEST(CacheFingerprint, EnvTextCoversTheOptions) {
  const auto base = mfsEnvText(mfsOpt(4));
  EXPECT_EQ(base, mfsEnvText(mfsOpt(4)));  // deterministic
  EXPECT_NE(base, mfsEnvText(mfsOpt(5)));

  core::MfsOptions chained = mfsOpt(4);
  chained.constraints.allowChaining = true;
  EXPECT_NE(base, mfsEnvText(chained));

  const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions ma = mfsaOpt(4);
  const auto mbase = mfsaEnvText(ma, lib);
  ma.weights.mux = 2.0;
  EXPECT_NE(mbase, mfsaEnvText(ma, lib));
  // A different library changes the env even with identical options.
  EXPECT_NE(mbase, mfsaEnvText(mfsaOpt(4), celllib::ncrLike({.scale = 2.0})));
}

// The authoritative keys are the field-hashed digests; they must track the
// same option changes the debug texts render.
TEST(CacheFingerprint, EnvDigestCoversTheOptions) {
  const Digest base = mfsEnvDigest(mfsOpt(4));
  EXPECT_EQ(base, mfsEnvDigest(mfsOpt(4)));  // deterministic
  EXPECT_NE(base, mfsEnvDigest(mfsOpt(5)));

  core::MfsOptions chained = mfsOpt(4);
  chained.constraints.allowChaining = true;
  EXPECT_NE(base, mfsEnvDigest(chained));

  core::MfsOptions trace = mfsOpt(4);
  trace.traceLiapunov = true;  // result-neutral: must share the key
  EXPECT_EQ(base, mfsEnvDigest(trace));

  const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions ma = mfsaOpt(4);
  const Digest mbase = mfsaEnvDigest(ma, lib);
  ma.weights.mux = 2.0;
  EXPECT_NE(mbase, mfsaEnvDigest(ma, lib));
  EXPECT_NE(mbase, mfsaEnvDigest(mfsaOpt(4), celllib::ncrLike({.scale = 2.0})));
}

TEST(CacheStore, RoundTripAndInvalidate) {
  SynthCache c(freshDir("store"));
  EXPECT_FALSE(c.load("mfs", 1, 2).has_value());
  EXPECT_TRUE(c.store("mfs", 1, 2, 3, "payload\n"));
  ASSERT_TRUE(c.load("mfs", 1, 2).has_value());
  EXPECT_EQ(*c.load("mfs", 1, 2), "payload\n");
  // The latest-index is keyed by the *name* digest, not the content digest.
  ASSERT_TRUE(c.loadLatest("mfs", 3, 2).has_value());
  EXPECT_EQ(*c.loadLatest("mfs", 3, 2), "payload\n");
  EXPECT_TRUE(c.store("mfs", 9, 2, 3, "newer\n"));
  EXPECT_EQ(*c.loadLatest("mfs", 3, 2), "newer\n");  // latest wins
  c.invalidate("mfs", 1, 2);
  EXPECT_FALSE(c.load("mfs", 1, 2).has_value());
}

TEST(CacheReplay, MfsEntryRoundTripsTheResult) {
  const dfg::Dfg g = dfg::parse(kDesign);
  const auto opt = mfsOpt(4);
  const core::MfsResult cold = core::runMfs(g, opt);
  ASSERT_TRUE(cold.feasible);
  const std::string entry = encodeMfsEntry(g, cold, mfsEnvText(opt));
  const auto warm = replayMfsEntry(g, opt, entry);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(sched::serializeSchedule(warm->schedule),
            sched::serializeSchedule(cold.schedule));
  EXPECT_EQ(warm->steps, cold.steps);
  EXPECT_EQ(warm->restarts, cold.restarts);
  EXPECT_EQ(warm->fuCount, cold.fuCount);
}

TEST(CacheReplay, CorruptEntriesAreRejected) {
  const dfg::Dfg g = dfg::parse(kDesign);
  const auto opt = mfsOpt(4);
  EXPECT_FALSE(replayMfsEntry(g, opt, "not an entry").has_value());
  EXPECT_FALSE(replayMfsEntry(g, opt, "mframe-cache 1 kind=mfs design=x\n")
                   .has_value());
  // A structurally valid entry for a *different* graph must not replay:
  // the placements name signals the live graph doesn't have.
  const dfg::Dfg other = dfg::parse(
      "dfg other\ninput p\nop inc q p\noutput out q\n");
  const core::MfsResult r = core::runMfs(other, mfsOpt(2));
  ASSERT_TRUE(r.feasible);
  const std::string entry = encodeMfsEntry(other, r, mfsEnvText(mfsOpt(2)));
  EXPECT_FALSE(replayMfsEntry(g, opt, entry).has_value());
}

TEST(CacheRun, MfsHitReproducesTheColdResultBitForBit) {
  CacheSession s("mfs_hit");
  const dfg::Dfg g = dfg::parse(kDesign);
  const auto opt = mfsOpt(4);

  const core::MfsResult cold = cachedRunMfs(g, opt);
  ASSERT_TRUE(cold.feasible);
  EXPECT_EQ(count(trace::Counter::CacheMisses), 1u);
  EXPECT_EQ(count(trace::Counter::CacheStores), 1u);
  EXPECT_EQ(count(trace::Counter::CacheHits), 0u);

  const core::MfsResult warm = cachedRunMfs(g, opt);
  ASSERT_TRUE(warm.feasible);
  EXPECT_EQ(count(trace::Counter::CacheHits), 1u);
  EXPECT_EQ(count(trace::Counter::CacheMisses), 1u);
  EXPECT_EQ(sched::serializeSchedule(warm.schedule),
            sched::serializeSchedule(cold.schedule));
  EXPECT_EQ(warm.fuCount, cold.fuCount);
  EXPECT_EQ(warm.steps, cold.steps);
  EXPECT_EQ(warm.restarts, cold.restarts);

  // The commutative-swap variant hits the same entry.
  const core::MfsResult swapped = cachedRunMfs(dfg::parse(kDesignSwapped), opt);
  ASSERT_TRUE(swapped.feasible);
  EXPECT_EQ(count(trace::Counter::CacheHits), 2u);
}

TEST(CacheRun, MfsaHitReproducesTheColdResultBitForBit) {
  CacheSession s("mfsa_hit");
  const dfg::Dfg g = dfg::parse(kDesign);
  const celllib::CellLibrary lib = celllib::ncrLike();
  const auto opt = mfsaOpt(4);

  const core::MfsaResult cold = cachedRunMfsa(g, lib, opt);
  ASSERT_TRUE(cold.feasible);
  const core::MfsaResult warm = cachedRunMfsa(g, lib, opt);
  ASSERT_TRUE(warm.feasible);
  EXPECT_EQ(count(trace::Counter::CacheHits), 1u);

  EXPECT_EQ(sched::serializeSchedule(warm.datapath.schedule),
            sched::serializeSchedule(cold.datapath.schedule));
  EXPECT_EQ(warm.datapath.aluSummary(), cold.datapath.aluSummary());
  EXPECT_EQ(warm.cost.toString(), cold.cost.toString());
  EXPECT_EQ(warm.steps, cold.steps);
  EXPECT_EQ(warm.restarts, cold.restarts);
  EXPECT_EQ(warm.datapath.regs.registers.size(),
            cold.datapath.regs.registers.size());
}

TEST(CacheRun, DifferentOptionsMissSeparately) {
  CacheSession s("env_split");
  const dfg::Dfg g = dfg::parse(kDesign);
  ASSERT_TRUE(cachedRunMfs(g, mfsOpt(4)).feasible);
  ASSERT_TRUE(cachedRunMfs(g, mfsOpt(5)).feasible);
  EXPECT_EQ(count(trace::Counter::CacheHits), 0u);
  EXPECT_EQ(count(trace::Counter::CacheMisses), 2u);
  ASSERT_TRUE(cachedRunMfs(g, mfsOpt(4)).feasible);
  EXPECT_EQ(count(trace::Counter::CacheHits), 1u);
}

TEST(CacheRun, CorruptEntryIsInvalidatedAndResynthesized) {
  CacheSession s("invalidate");
  const dfg::Dfg g = dfg::parse(kDesign);
  const auto opt = mfsOpt(4);
  // Plant garbage at exactly the key the lookup computes.
  const Digest d = fingerprintDfg(g);
  const Digest e = mfsEnvDigest(opt);
  ASSERT_TRUE(s.store.store("mfs", d, e, digestOf(g.name()), "garbage\n"));

  const core::MfsResult r = cachedRunMfs(g, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(count(trace::Counter::CacheInvalidations), 1u);
  EXPECT_EQ(count(trace::Counter::CacheMisses), 1u);
  EXPECT_EQ(count(trace::Counter::CacheHits), 0u);
  // The bad entry was replaced; the next run hits.
  ASSERT_TRUE(cachedRunMfs(g, opt).feasible);
  EXPECT_EQ(count(trace::Counter::CacheHits), 1u);
}

TEST(CacheRun, SmallEditResynthesizesIncrementally) {
  CacheSession s("incremental");
  const auto opt = mfsOpt(4);
  ASSERT_TRUE(cachedRunMfs(dfg::parse(kDesign), opt).feasible);
  EXPECT_EQ(count(trace::Counter::CacheIncrementalHits), 0u);

  // Same design name, one operation's kind edited: a full miss, resolved by
  // re-scheduling only the cone around the changed op.
  const dfg::Dfg edited = dfg::parse(kDesignEdited);
  const core::MfsResult r = cachedRunMfs(edited, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(count(trace::Counter::CacheIncrementalHits), 1u);
  EXPECT_EQ(count(trace::Counter::CacheMisses), 2u);
  EXPECT_TRUE(sched::verifySchedule(r.schedule, opt.constraints).empty());
  // The incremental result was stored: re-running the edited design hits.
  ASSERT_TRUE(cachedRunMfs(edited, opt).feasible);
  EXPECT_EQ(count(trace::Counter::CacheHits), 1u);
}

TEST(CacheRun, NoActiveCacheIsAPassThrough) {
  trace::enableCounters(true);
  trace::resetCounters();
  setActiveCache(nullptr);
  const core::MfsResult r = cachedRunMfs(dfg::parse(kDesign), mfsOpt(4));
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(count(trace::Counter::CacheMisses), 0u);
  EXPECT_EQ(count(trace::Counter::CacheStores), 0u);
  trace::enableCounters(false);
}

// The explorer routes every candidate through the cache; the cache.*
// counters — like every other counter — must be bit-identical across
// worker-thread counts, and a warm sweep must replay all candidates.
TEST(CacheRun, ExploreCountersAreJobCountInvariant) {
  const dfg::Dfg g = dfg::parse(kDesign);
  const celllib::CellLibrary lib = celllib::ncrLike();
  explore::SweepSpec spec = explore::SweepSpec::defaults();
  spec.steps = {4, 5};  // trim the sweep; two budgets exercise enough

  std::string json1, json8;
  std::uint64_t misses1 = 0, misses8 = 0, stores1 = 0, stores8 = 0;
  {
    CacheSession s("explore_j1");
    json1 = explore::toJson(explore::explore(g, lib, spec, 1));
    misses1 = count(trace::Counter::CacheMisses);
    stores1 = count(trace::Counter::CacheStores);
    EXPECT_EQ(count(trace::Counter::CacheHits), 0u);
  }
  {
    CacheSession s("explore_j8");
    json8 = explore::toJson(explore::explore(g, lib, spec, 8));
    misses8 = count(trace::Counter::CacheMisses);
    stores8 = count(trace::Counter::CacheStores);

    EXPECT_EQ(misses1, misses8);
    EXPECT_EQ(stores1, stores8);
    EXPECT_EQ(json1, json8);

    // Warm sweep on the jobs=8 cache: every feasible candidate replays, and
    // the JSON (costs, restarts, frontier) is byte-identical to cold.
    trace::resetCounters();
    const std::string warm = explore::toJson(explore::explore(g, lib, spec, 8));
    EXPECT_EQ(warm, json8);
    EXPECT_EQ(count(trace::Counter::CacheHits), stores8);
    EXPECT_EQ(count(trace::Counter::CacheStores), 0u);
  }
}

}  // namespace
}  // namespace mframe::cache
