// The tracing and metrics layer: counter registry semantics, span/JSON
// structure, and the determinism contract — counters are commutative sums
// of relaxed atomics, so a sweep's metrics block is bit-identical across
// --jobs counts. The Explore*-named suites also run under TSan (tools/ci.sh
// filters on 'Explore*') to vouch for the concurrent bump paths.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "explore/explore.h"
#include "workloads/benchmarks.h"

namespace mframe::trace {
namespace {

/// Counters and the span buffer are process-global; every test starts from
/// a clean slate and switches instrumentation back off on exit so the rest
/// of the suite keeps its zero-overhead default.
struct ScopedInstrumentation {
  ScopedInstrumentation() {
    endTracing();
    enableCounters(true);
    resetCounters();
  }
  ~ScopedInstrumentation() {
    enableCounters(false);
    resetCounters();
    endTracing();
  }
};

TEST(Trace, DisabledBumpRecordsNothing) {
  ScopedInstrumentation scoped;
  enableCounters(false);
  bump(Counter::MfsaRuns);
  EXPECT_EQ(counterValue(Counter::MfsaRuns), 0u);
  enableCounters(true);
  bump(Counter::MfsaRuns, 3);
  bump(Counter::MfsaRuns);
  EXPECT_EQ(counterValue(Counter::MfsaRuns), 4u);
  resetCounters();
  EXPECT_EQ(counterValue(Counter::MfsaRuns), 0u);
}

TEST(Trace, CounterNamesAreUniqueAndDotted) {
  std::set<std::string_view> seen;
  for (int i = 0; i < kNumCounters; ++i) {
    const std::string_view name = counterName(static_cast<Counter>(i));
    EXPECT_NE(name, "?");
    EXPECT_NE(name.find('.'), std::string_view::npos) << name;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
}

TEST(Trace, MetricsJsonCarriesEveryCounterAndDerivedRates) {
  ScopedInstrumentation scoped;
  bump(Counter::MuxMemoHits, 3);
  bump(Counter::MuxMemoMisses, 1);
  const std::string j = metricsJson();
  // The marker line scripts grep for (tools/bench-json.sh, bench-compare.sh).
  EXPECT_EQ(j.rfind("{\"schema\": 1,", 0), 0u);
  for (const auto& [name, value] : counterSnapshot())
    EXPECT_NE(j.find("\"" + std::string(name) + "\":"), std::string::npos)
        << name;
  EXPECT_NE(j.find("\"mux.memoHitRate\": 0.750000"), std::string::npos) << j;
  EXPECT_NE(j.find("\"mux.deltaIncrementalRate\": 0.000000"),
            std::string::npos);
  EXPECT_NE(j.find("\"explore.feasibleRate\""), std::string::npos);
}

TEST(Trace, SpansSerializeAsChromeCompleteEvents) {
  ScopedInstrumentation scoped;
  beginTracing();
  { const Span s("unit-test-span"); }
  completeEvent("direct-event", nowUs(), "{\"k\": 1}");
  endTracing();
  const std::string j = traceJson();
  EXPECT_EQ(j.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(j.find("\"name\": \"unit-test-span\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("\"args\": {\"k\": 1}"), std::string::npos);
  // The metrics block rides along in the same file.
  EXPECT_NE(j.find("\"metrics\": {\"schema\": 1,"), std::string::npos);
}

TEST(Trace, DisabledSpanRecordsNothing) {
  ScopedInstrumentation scoped;
  beginTracing();
  endTracing();
  { const Span s("should-not-appear"); }
  completeEvent("nor-this", 0);
  EXPECT_EQ(traceJson().find("should-not-appear"), std::string::npos);
  EXPECT_EQ(traceJson().find("nor-this"), std::string::npos);
}

TEST(Trace, BeginTracingClearsThePreviousSession) {
  ScopedInstrumentation scoped;
  beginTracing();
  { const Span s("stale-span"); }
  beginTracing();
  { const Span s("fresh-span"); }
  endTracing();
  const std::string j = traceJson();
  EXPECT_EQ(j.find("stale-span"), std::string::npos);
  EXPECT_NE(j.find("fresh-span"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism and differential contracts on real pipeline runs
// ---------------------------------------------------------------------------

explore::SweepSpec smallSpec() {
  explore::SweepSpec s = explore::SweepSpec::defaults();
  s.weights = {core::MfsaWeights{}};
  s.priorityRules = {sched::PriorityRule::Mobility};
  return s;
}

TEST(ExploreCounters, BitIdenticalAcrossJobCounts) {
  // The explorer's determinism contract extends to the counter registry:
  // every bump is a commutative sum over the same per-config work, so the
  // snapshot cannot depend on how items were dealt to threads.
  const celllib::CellLibrary lib = celllib::ncrLike();
  const dfg::Dfg g = workloads::diffeq();
  ScopedInstrumentation scoped;

  (void)explore::explore(g, lib, smallSpec(), 1);
  const auto one = counterSnapshot();
  resetCounters();
  (void)explore::explore(g, lib, smallSpec(), 8);
  const auto eight = counterSnapshot();

  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].second, eight[i].second) << one[i].first;
  }
  EXPECT_GT(counterValue(Counter::ExploreConfigs), 0u);
  EXPECT_GT(counterValue(Counter::MfsaCandidates), 0u);
  EXPECT_EQ(counterValue(Counter::ExploreConfigs),
            counterValue(Counter::MfsaRuns));
}

TEST(ExploreCounters, MuxMemoDifferentialMatchesIncrementalSwitch) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  const dfg::Dfg g = workloads::diffeq();
  ScopedInstrumentation scoped;

  core::MfsaOptions inc;
  inc.constraints.timeSteps = 4;
  inc.incrementalMux = true;
  ASSERT_TRUE(core::runMfsa(g, lib, inc).feasible);
  // Every memo miss computes exactly one delta — incrementally or via the
  // full-rebuild fallback — so the three counters tie out.
  EXPECT_GT(counterValue(Counter::MuxMemoMisses), 0u);
  EXPECT_EQ(counterValue(Counter::MuxMemoMisses),
            counterValue(Counter::MuxDeltaIncremental) +
                counterValue(Counter::MuxDeltaRebuilds));
  // The placement loop probes each (ALU, op) pair at most once per attempt,
  // so today the memo never hits; the counter pins that down. If a future
  // change probes pairs twice (or the memo is removed), this moves.
  EXPECT_EQ(counterValue(Counter::MuxMemoHits), 0u);

  resetCounters();
  core::MfsaOptions full = inc;
  full.incrementalMux = false;
  ASSERT_TRUE(core::runMfsa(g, lib, full).feasible);
  // The from-scratch differential path touches none of the delta machinery.
  EXPECT_EQ(counterValue(Counter::MuxMemoMisses), 0u);
  EXPECT_EQ(counterValue(Counter::MuxDeltaIncremental), 0u);
  EXPECT_EQ(counterValue(Counter::MuxDeltaRebuilds), 0u);
  EXPECT_GT(counterValue(Counter::MuxFullArrangements), 0u);
}

}  // namespace
}  // namespace mframe::trace
