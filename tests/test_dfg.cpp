#include "dfg/dfg.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::dfg {
namespace {

TEST(Dfg, PredsAndSuccsAreConsistent) {
  const Dfg g = test::smallDiamond();
  const NodeId y = g.findByName("y");
  ASSERT_NE(y, kNoNode);
  EXPECT_EQ(g.preds(y).size(), 2u);
  EXPECT_EQ(g.succs(y).size(), 1u);  // f consumes y
  for (NodeId p : g.preds(y)) {
    const auto& ss = g.succs(p);
    EXPECT_NE(std::find(ss.begin(), ss.end(), y), ss.end());
  }
}

TEST(Dfg, OpPredsFilterInputs) {
  const Dfg g = test::smallDiamond();
  const NodeId s = g.findByName("s");
  EXPECT_EQ(g.preds(s).size(), 2u);     // two Input nodes
  EXPECT_TRUE(g.opPreds(s).empty());    // no *operation* predecessors
  const NodeId y = g.findByName("y");
  EXPECT_EQ(g.opPreds(y).size(), 2u);
}

TEST(Dfg, OperationsExcludeInputsAndConsts) {
  const Dfg g = test::smallDiamond();
  EXPECT_EQ(g.operations().size(), 4u);
  EXPECT_EQ(g.size(), 9u);
}

TEST(Dfg, CountOfType) {
  const Dfg g = test::smallDiamond();
  EXPECT_EQ(g.countOfType(FuType::Adder), 1u);
  EXPECT_EQ(g.countOfType(FuType::Multiplier), 1u);
  EXPECT_EQ(g.countOfType(FuType::Divider), 0u);
}

TEST(Dfg, TopoOrderRespectsEdges) {
  const Dfg g = test::smallDiamond();
  const auto order = g.topoOrder();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(g.size());
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const Node& n : g.nodes())
    for (NodeId in : n.inputs) EXPECT_LT(pos[in], pos[n.id]);
}

TEST(Dfg, ValidateAcceptsWellFormed) {
  EXPECT_FALSE(test::smallDiamond().validate().has_value());
  EXPECT_FALSE(test::branchy().validate().has_value());
}

TEST(Dfg, ValidateRejectsDuplicateNames) {
  Dfg g("bad");
  Node a;
  a.kind = OpKind::Input;
  a.name = "x";
  g.addNode(a);
  Node b;
  b.kind = OpKind::Input;
  b.name = "x";
  g.addNode(b);
  ASSERT_TRUE(g.validate().has_value());
  EXPECT_NE(g.validate()->find("duplicate"), std::string::npos);
}

TEST(Dfg, ValidateRejectsWrongArity) {
  Dfg g("bad");
  Node x;
  x.kind = OpKind::Input;
  x.name = "x";
  const NodeId xi = g.addNode(x);
  Node n;
  n.kind = OpKind::Add;
  n.name = "a";
  n.inputs = {xi};  // Add needs 2
  g.addNode(n);
  ASSERT_TRUE(g.validate().has_value());
  EXPECT_NE(g.validate()->find("expects 2 inputs"), std::string::npos);
}

TEST(Dfg, ValidateRejectsForwardReferences) {
  Dfg g("bad");
  Node n;
  n.kind = OpKind::Not;
  n.name = "n";
  n.inputs = {1};  // references a node added later
  g.addNode(n);
  Node x;
  x.kind = OpKind::Input;
  x.name = "x";
  g.addNode(x);
  EXPECT_TRUE(g.validate().has_value());
}

TEST(Dfg, ValidateRejectsNonPositiveCycles) {
  Dfg g("bad");
  Node x;
  x.kind = OpKind::Input;
  x.name = "x";
  const NodeId xi = g.addNode(x);
  Node n;
  n.kind = OpKind::Not;
  n.name = "n";
  n.inputs = {xi};
  n.cycles = 0;
  g.addNode(n);
  EXPECT_TRUE(g.validate().has_value());
}

TEST(Dfg, ValidateRejectsMalformedBranchPath) {
  Dfg g("bad");
  Node x;
  x.kind = OpKind::Input;
  x.name = "x";
  const NodeId xi = g.addNode(x);
  Node n;
  n.kind = OpKind::Not;
  n.name = "n";
  n.inputs = {xi};
  n.branchPath = "c1";  // odd component count
  g.addNode(n);
  EXPECT_TRUE(g.validate().has_value());
}

TEST(Dfg, FindByName) {
  const Dfg g = test::smallDiamond();
  EXPECT_NE(g.findByName("y"), kNoNode);
  EXPECT_EQ(g.findByName("zzz"), kNoNode);
}

struct MutexCase {
  const char* a;
  const char* b;
  bool exclusive;
};

class BranchPathTest : public ::testing::TestWithParam<MutexCase> {};

TEST_P(BranchPathTest, PathsMutuallyExclusive) {
  const auto& c = GetParam();
  EXPECT_EQ(pathsMutuallyExclusive(c.a, c.b), c.exclusive)
      << c.a << " vs " << c.b;
  EXPECT_EQ(pathsMutuallyExclusive(c.b, c.a), c.exclusive) << "symmetry";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BranchPathTest,
    ::testing::Values(
        MutexCase{"", "", false},                   // both unconditional
        MutexCase{"", "c1.t", false},               // one unconditional
        MutexCase{"c1.t", "c1.e", true},            // sibling arms
        MutexCase{"c1.t", "c1.t", false},           // same arm
        MutexCase{"c1.t", "c2.t", false},           // unrelated conditionals
        MutexCase{"c1.t", "c1.t.c2.e", false},      // nested inside same arm
        MutexCase{"c1.t.c2.t", "c1.t.c2.e", true},  // nested siblings
        MutexCase{"c1.t.c2.t", "c1.e.c9.x", true},  // diverge at outer arm
        MutexCase{"c1.t.c2.t", "c1.t.c3.e", false}  // diverge at cond id
        ));

TEST(Dfg, MutuallyExclusiveUsesNodePaths) {
  const Dfg g = test::branchy();
  const NodeId t1 = g.findByName("t1");
  const NodeId e1 = g.findByName("e1");
  const NodeId j = g.findByName("j");
  EXPECT_TRUE(g.mutuallyExclusive(t1, e1));
  EXPECT_FALSE(g.mutuallyExclusive(t1, j));
}

TEST(Dfg, OutputsRecorded) {
  const Dfg g = test::smallDiamond();
  ASSERT_EQ(g.outputs().size(), 2u);
  EXPECT_EQ(g.outputs()[0].second, "y");
}

}  // namespace
}  // namespace mframe::dfg
