// Reproduction-property tests over the programmatic Table-1/Table-2 runs:
// these encode the *shape* claims EXPERIMENTS.md makes, so a regression in
// any engine breaks a test rather than silently bending a bench table.
#include "workloads/table_runner.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"

namespace mframe::workloads {
namespace {

using dfg::FuType;

const std::vector<Table1Row>& table1() {
  static const auto rows = runTable1(paperSuite());
  return rows;
}

const std::vector<Table2Row>& table2() {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  static const auto rows = runTable2(paperSuite(), lib);
  return rows;
}

int fuOf(const Table1Row& r, FuType t) {
  auto it = r.fuCount.find(t);
  return it == r.fuCount.end() ? 0 : it->second;
}

TEST(Table1, EveryRowFeasibleAndVerified) {
  for (const auto& r : table1()) {
    EXPECT_TRUE(r.feasible) << r.exampleId << " " << r.variant << " T=" << r.timeSteps;
    EXPECT_TRUE(r.verified) << r.exampleId << " " << r.variant << " T=" << r.timeSteps;
  }
}

TEST(Table1, FuCountsMonotoneInTimeWithinVariant) {
  // Within one example+variant, more control steps never demand more total
  // FUs.
  std::map<std::pair<std::string, std::string>, std::vector<const Table1Row*>> groups;
  for (const auto& r : table1()) groups[{r.exampleId, r.variant}].push_back(&r);
  for (const auto& [key, rows] : groups) {
    for (std::size_t i = 1; i < rows.size(); ++i) {
      int prev = 0, cur = 0;
      for (const auto& [t, n] : rows[i - 1]->fuCount) prev += n;
      for (const auto& [t, n] : rows[i]->fuCount) cur += n;
      EXPECT_LE(cur, prev) << key.first << " " << key.second;
    }
  }
}

TEST(Table1, ClassicDataPoints) {
  for (const auto& r : table1()) {
    if (r.exampleId == "ex3" && r.variant == "plain" && r.timeSteps == 4) {
      EXPECT_EQ(fuOf(r, FuType::Multiplier), 2);  // the HAL result
    }
    if (r.exampleId == "ex6" && r.variant == "plain") {
      EXPECT_LE(fuOf(r, FuType::Multiplier), 3);  // the EWF band
    }
    if (r.exampleId == "ex6" && r.variant == "S") {
      EXPECT_EQ(fuOf(r, FuType::Multiplier), 1);  // pipelined multiplier
    }
  }
}

TEST(Table1, StructuralVariantNeverWorseOnMultipliers) {
  std::map<std::pair<std::string, int>, int> plainMuls;
  for (const auto& r : table1())
    if (r.variant == "plain") plainMuls[{r.exampleId, r.timeSteps}] = fuOf(r, FuType::Multiplier);
  for (const auto& r : table1()) {
    if (r.variant != "S") continue;
    auto it = plainMuls.find({r.exampleId, r.timeSteps});
    if (it == plainMuls.end()) continue;
    EXPECT_LE(fuOf(r, FuType::Multiplier), it->second)
        << r.exampleId << " T=" << r.timeSteps;
  }
}

TEST(Table1, RuntimeStaysInThePaperBudget) {
  // The paper: < 200 ms per example on a 1992 SPARC. Give ourselves the
  // same budget per *row* on modern hardware — failing this means an
  // accidental complexity explosion.
  for (const auto& r : table1())
    EXPECT_LT(r.milliseconds, 200.0) << r.exampleId << " " << r.variant;
}

TEST(Table2, EveryRowFeasibleVerifiedAndCosted) {
  for (const auto& r : table2()) {
    EXPECT_TRUE(r.feasible) << r.exampleId << " style " << r.style;
    EXPECT_TRUE(r.verified) << r.exampleId << " style " << r.style;
    EXPECT_GT(r.cost.total, 0.0);
    EXPECT_FALSE(r.aluSummary.empty());
  }
}

TEST(Table2, StyleTwoWithinSaneBandOfStyleOne) {
  auto rows = table2();
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    ASSERT_EQ(rows[i].style, 1);
    ASSERT_EQ(rows[i + 1].style, 2);
    // Style 2 never dramatically cheaper, never more than ~35% dearer.
    EXPECT_GE(rows[i + 1].cost.total, 0.95 * rows[i].cost.total)
        << rows[i].exampleId;
    EXPECT_LE(rows[i + 1].cost.total, 1.35 * rows[i].cost.total)
        << rows[i].exampleId;
  }
}

TEST(Table2, Ex1CountsMatchThePaperExactly) {
  for (const auto& r : table2()) {
    if (r.exampleId != "ex1" || r.style != 1) continue;
    EXPECT_EQ(r.cost.regCount, 8);
    EXPECT_EQ(r.cost.muxCount, 4);
    EXPECT_EQ(r.cost.muxInputCount, 9);
  }
}

TEST(Table2, MultifunctionAlusAppear) {
  bool any = false;
  for (const auto& r : table2())
    if (r.aluSummary.find("(+-") != std::string::npos ||
        r.aluSummary.find("(+*") != std::string::npos ||
        r.aluSummary.find("(-*") != std::string::npos ||
        r.aluSummary.find("(+<") != std::string::npos)
      any = true;
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace mframe::workloads
