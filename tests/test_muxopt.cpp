#include "alloc/muxopt.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "celllib/ncr_like.h"
#include "dfg/builder.h"

namespace mframe::alloc {
namespace {

using dfg::NodeId;

TEST(MuxOpt, NonCommutativeOperandsPinnedToPorts) {
  dfg::Builder b("nc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto s1 = b.sub(x, y, "s1");
  const auto s2 = b.sub(x, y, "s2");
  b.output(s1, "o1");
  b.output(s2, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto a = arrangeInputs(g, {s1, s2});
  EXPECT_EQ(a.left, std::vector<NodeId>{x});
  EXPECT_EQ(a.right, std::vector<NodeId>{y});
  EXPECT_EQ(a.totalInputs(), 2u);
}

TEST(MuxOpt, CommutativeSwapImprovesSharing) {
  // sub pins x->L, y->R; the add (y, x) should swap to reuse both.
  dfg::Builder b("sw");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto s = b.sub(x, y, "s");
  const auto a = b.add(y, x, "a");
  b.output(s, "o1");
  b.output(a, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {s, a});
  EXPECT_EQ(arr.totalInputs(), 2u);
  EXPECT_TRUE(arr.swapped.at(a));
  EXPECT_FALSE(arr.swapped.at(s));
}

TEST(MuxOpt, NoSwapWhenNaturalOrderIsAsGood) {
  dfg::Builder b("nat");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto a1 = b.add(x, y, "a1");
  const auto a2 = b.add(x, y, "a2");
  b.output(a1, "o1");
  b.output(a2, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {a1, a2});
  EXPECT_FALSE(arr.swapped.at(a2));
  EXPECT_EQ(arr.totalInputs(), 2u);
}

TEST(MuxOpt, UnaryOpsUseTheLeftPort) {
  dfg::Builder b("un");
  const auto x = b.input("x");
  const auto n = b.bnot(x, "n");
  b.output(n, "o");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {n});
  EXPECT_EQ(arr.left.size(), 1u);
  EXPECT_TRUE(arr.right.empty());
}

TEST(MuxOpt, SignalsDeduplicatedPerPort) {
  dfg::Builder b("dup");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto z = b.input("z");
  const auto s1 = b.sub(x, y, "s1");
  const auto s2 = b.sub(x, z, "s2");  // x reused on the left port
  b.output(s1, "o1");
  b.output(s2, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {s1, s2});
  EXPECT_EQ(arr.left.size(), 1u);
  EXPECT_EQ(arr.right.size(), 2u);
}

TEST(MuxOpt, CostUsesTheNonlinearTable) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  MuxArrangement one;
  one.left = {0};
  one.right = {1};
  EXPECT_DOUBLE_EQ(muxCostOf(lib, one), 0.0);  // wires

  MuxArrangement two;
  two.left = {0, 1};
  two.right = {2};
  EXPECT_DOUBLE_EQ(muxCostOf(lib, two), lib.muxCost(2));
}

TEST(MuxOpt, DeterministicInOpOrder) {
  dfg::Builder b("det");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto z = b.input("z");
  const auto a1 = b.add(x, y, "a1");
  const auto a2 = b.add(z, x, "a2");
  const auto a3 = b.add(y, z, "a3");
  b.output(a3, "o");
  (void)a1;
  (void)a2;
  const dfg::Dfg g = std::move(b).build();
  const auto r1 = arrangeInputs(g, {a1, a2, a3});
  const auto r2 = arrangeInputs(g, {a1, a2, a3});
  EXPECT_EQ(r1.left, r2.left);
  EXPECT_EQ(r1.right, r2.right);
}

TEST(MuxOpt, DeltaCommutativeAppendIsPureIncrement) {
  // sub pins x->L, y->R; appending add(y, x) must replay the swap decision
  // against the base without rebuilding.
  dfg::Builder b("dci");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto s = b.sub(x, y, "s");
  const auto a = b.add(y, x, "a");
  b.output(a, "o");
  const dfg::Dfg g = std::move(b).build();
  const auto base = arrangeInputs(g, {s});
  const auto d = arrangeInputsDelta(g, base, {s}, a);
  EXPECT_FALSE(d.rebuilt);
  EXPECT_TRUE(d.swapped);
  EXPECT_EQ(d.left, 1u);
  EXPECT_EQ(d.right, 1u);
  const auto full = arrangeInputs(g, {s, a});
  EXPECT_EQ(d.left, full.left.size());
  EXPECT_EQ(d.right, full.right.size());
  EXPECT_EQ(d.swapped, full.swapped.at(a));
}

TEST(MuxOpt, DeltaPinnedFixedOrderAddsNoSignals) {
  // A second sub over already-pinned signals leaves both ports untouched —
  // the provably-exact fast path, no rebuild.
  dfg::Builder b("dpf");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto s1 = b.sub(x, y, "s1");
  const auto s2 = b.sub(x, y, "s2");
  const auto n = b.bnot(x, "n");  // unary over a pinned left signal
  b.output(s2, "o");
  b.output(n, "on");
  const dfg::Dfg g = std::move(b).build();
  const auto base = arrangeInputs(g, {s1});
  const auto d2 = arrangeInputsDelta(g, base, {s1}, s2);
  EXPECT_FALSE(d2.rebuilt);
  EXPECT_EQ(d2.left, base.left.size());
  EXPECT_EQ(d2.right, base.right.size());
  const auto dn = arrangeInputsDelta(g, base, {s1}, n);
  EXPECT_FALSE(dn.rebuilt);
  EXPECT_EQ(dn.left, base.left.size());
  EXPECT_EQ(dn.right, base.right.size());
}

TEST(MuxOpt, DeltaUnpinnedFixedOrderFallsBackToRebuild) {
  // base = {add(y,x)} places y->L, x->R via pass 2. Appending sub(x,y) pins
  // the opposite orientation in pass 1 and flips the add's decision: a naive
  // increment would report 2+2 signals, the exact answer is 1+1.
  dfg::Builder b("dub");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto a = b.add(y, x, "a");
  const auto s = b.sub(x, y, "s");
  b.output(s, "o");
  const dfg::Dfg g = std::move(b).build();
  const auto base = arrangeInputs(g, {a});
  const auto d = arrangeInputsDelta(g, base, {a}, s);
  EXPECT_TRUE(d.rebuilt);
  EXPECT_EQ(d.left, 1u);
  EXPECT_EQ(d.right, 1u);
  const auto full = arrangeInputs(g, {a, s});
  EXPECT_EQ(d.left, full.left.size());
  EXPECT_EQ(d.right, full.right.size());
}

TEST(MuxOpt, DeltaMatchesBatchOnSystematicOpMixes) {
  // Drive the delta path through many mixed op sets over a shared signal
  // pool and check every single-op append against the from-scratch
  // arrangement. The LCG keeps the mixes varied but deterministic.
  std::uint32_t state = 0x2545f491u;
  const auto rnd = [&state](std::uint32_t m) {
    state = state * 1664525u + 1013904223u;
    return (state >> 16) % m;
  };
  for (int trial = 0; trial < 24; ++trial) {
    dfg::Builder b("mix" + std::to_string(trial));
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i)
      pool.push_back(b.input("x" + std::to_string(i)));
    std::vector<NodeId> ops;
    for (int i = 0; i < 10; ++i) {
      const NodeId u = pool[rnd(static_cast<std::uint32_t>(pool.size()))];
      const NodeId v = pool[rnd(static_cast<std::uint32_t>(pool.size()))];
      const std::string name = "n" + std::to_string(i);
      switch (rnd(4)) {
        case 0:
          ops.push_back(b.add(u, v, name));
          break;
        case 1:
          ops.push_back(b.bxor(u, v, name));
          break;
        case 2:
          ops.push_back(b.sub(u, v, name));
          break;
        default:
          ops.push_back(b.bnot(u, name));
          break;
      }
    }
    b.output(ops.back(), "o");
    const dfg::Dfg g = std::move(b).build();
    std::vector<NodeId> prefix;
    for (NodeId next : ops) {
      const MuxArrangement base = arrangeInputs(g, prefix);
      const MuxDelta d = arrangeInputsDelta(g, base, prefix, next);
      prefix.push_back(next);
      const MuxArrangement full = arrangeInputs(g, prefix);
      ASSERT_EQ(d.left, full.left.size())
          << g.name() << " appending " << g.node(next).name;
      ASSERT_EQ(d.right, full.right.size())
          << g.name() << " appending " << g.node(next).name;
      if (!d.rebuilt) EXPECT_EQ(d.swapped, full.swapped.at(next));
    }
  }
}

}  // namespace
}  // namespace mframe::alloc
