#include "alloc/muxopt.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "dfg/builder.h"

namespace mframe::alloc {
namespace {

using dfg::NodeId;

TEST(MuxOpt, NonCommutativeOperandsPinnedToPorts) {
  dfg::Builder b("nc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto s1 = b.sub(x, y, "s1");
  const auto s2 = b.sub(x, y, "s2");
  b.output(s1, "o1");
  b.output(s2, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto a = arrangeInputs(g, {s1, s2});
  EXPECT_EQ(a.left, std::vector<NodeId>{x});
  EXPECT_EQ(a.right, std::vector<NodeId>{y});
  EXPECT_EQ(a.totalInputs(), 2u);
}

TEST(MuxOpt, CommutativeSwapImprovesSharing) {
  // sub pins x->L, y->R; the add (y, x) should swap to reuse both.
  dfg::Builder b("sw");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto s = b.sub(x, y, "s");
  const auto a = b.add(y, x, "a");
  b.output(s, "o1");
  b.output(a, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {s, a});
  EXPECT_EQ(arr.totalInputs(), 2u);
  EXPECT_TRUE(arr.swapped.at(a));
  EXPECT_FALSE(arr.swapped.at(s));
}

TEST(MuxOpt, NoSwapWhenNaturalOrderIsAsGood) {
  dfg::Builder b("nat");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto a1 = b.add(x, y, "a1");
  const auto a2 = b.add(x, y, "a2");
  b.output(a1, "o1");
  b.output(a2, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {a1, a2});
  EXPECT_FALSE(arr.swapped.at(a2));
  EXPECT_EQ(arr.totalInputs(), 2u);
}

TEST(MuxOpt, UnaryOpsUseTheLeftPort) {
  dfg::Builder b("un");
  const auto x = b.input("x");
  const auto n = b.bnot(x, "n");
  b.output(n, "o");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {n});
  EXPECT_EQ(arr.left.size(), 1u);
  EXPECT_TRUE(arr.right.empty());
}

TEST(MuxOpt, SignalsDeduplicatedPerPort) {
  dfg::Builder b("dup");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto z = b.input("z");
  const auto s1 = b.sub(x, y, "s1");
  const auto s2 = b.sub(x, z, "s2");  // x reused on the left port
  b.output(s1, "o1");
  b.output(s2, "o2");
  const dfg::Dfg g = std::move(b).build();
  const auto arr = arrangeInputs(g, {s1, s2});
  EXPECT_EQ(arr.left.size(), 1u);
  EXPECT_EQ(arr.right.size(), 2u);
}

TEST(MuxOpt, CostUsesTheNonlinearTable) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  MuxArrangement one;
  one.left = {0};
  one.right = {1};
  EXPECT_DOUBLE_EQ(muxCostOf(lib, one), 0.0);  // wires

  MuxArrangement two;
  two.left = {0, 1};
  two.right = {2};
  EXPECT_DOUBLE_EQ(muxCostOf(lib, two), lib.muxCost(2));
}

TEST(MuxOpt, DeterministicInOpOrder) {
  dfg::Builder b("det");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto z = b.input("z");
  const auto a1 = b.add(x, y, "a1");
  const auto a2 = b.add(z, x, "a2");
  const auto a3 = b.add(y, z, "a3");
  b.output(a3, "o");
  (void)a1;
  (void)a2;
  const dfg::Dfg g = std::move(b).build();
  const auto r1 = arrangeInputs(g, {a1, a2, a3});
  const auto r2 = arrangeInputs(g, {a1, a2, a3});
  EXPECT_EQ(r1.left, r2.left);
  EXPECT_EQ(r1.right, r2.right);
}

}  // namespace
}  // namespace mframe::alloc
