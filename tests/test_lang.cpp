#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "lang/lower.h"
#include "lang/parser.h"
#include "sched/verify.h"
#include "sim/dfg_eval.h"

namespace mframe::lang {
namespace {

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  const auto toks = tokenize("design d; a = b << 2 <= c != 1;");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Token::Kind::KwDesign);
  EXPECT_EQ(toks[1].text, "d");
  bool sawShl = false, sawLe = false, sawNe = false;
  for (const auto& t : toks) {
    if (t.kind == Token::Kind::Shl) sawShl = true;
    if (t.kind == Token::Kind::Le) sawLe = true;
    if (t.kind == Token::Kind::Ne) sawNe = true;
  }
  EXPECT_TRUE(sawShl && sawLe && sawNe);
}

TEST(Lexer, CommentsSkippedAndLinesCounted) {
  const auto toks = tokenize("# comment\n\ndesign x;\n");
  EXPECT_EQ(toks[0].kind, Token::Kind::KwDesign);
  EXPECT_EQ(toks[0].line, 3);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(tokenize("design d; a = $;"), LangError);
}

// Regression: integer literals used to go through unchecked strtol, so an
// overflowing constant silently saturated. The lexer now rejects it with a
// diagnostic naming the literal and carrying the line number.
TEST(Lexer, RejectsOverflowingIntegerLiterals) {
  try {
    tokenize("design d;\na = b + 99999999999999999999999999;\n");
    FAIL() << "overflowing literal must not tokenize";
  } catch (const LangError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("99999999999999999999999999"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
  // The largest representable literal still tokenizes.
  const auto toks = tokenize("design d; a = 9223372036854775807;");
  bool found = false;
  for (const auto& t : toks)
    if (t.kind == Token::Kind::Number && t.number == 9223372036854775807L)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Parser, PrecedenceMatchesC) {
  const Program p = parseProgram("design d;\ninput a, b, c;\nx = a + b * c;\n");
  ASSERT_EQ(p.stmts.size(), 1u);
  const Expr& root = *p.stmts[0]->value;
  ASSERT_EQ(root.kind, Expr::Kind::Binary);
  EXPECT_EQ(root.op, dfg::OpKind::Add);          // + at the top
  EXPECT_EQ(root.rhs->op, dfg::OpKind::Mul);     // * binds tighter
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const Program p = parseProgram("design d;\ninput a, b, c;\nx = (a + b) * c;\n");
  EXPECT_EQ(p.stmts[0]->value->op, dfg::OpKind::Mul);
}

TEST(Parser, AttributesOnAssignment) {
  const Program p =
      parseProgram("design d;\ninput a, b;\nm = a * b [cycles=2] [delay=160];\n");
  EXPECT_EQ(p.stmts[0]->cycles, 2);
  EXPECT_DOUBLE_EQ(p.stmts[0]->delayNs, 160.0);
}

TEST(Parser, IfElseAndLoopStructure) {
  const Program p = parseProgram(R"(
design d;
input a, b;
if (a < b) { t = a + 1; } else { u = b + 1; }
loop l1 within 3 bound 10 { s = a + b; }
)");
  ASSERT_EQ(p.stmts.size(), 2u);
  EXPECT_EQ(p.stmts[0]->kind, Stmt::Kind::If);
  EXPECT_EQ(p.stmts[0]->thenBody.size(), 1u);
  EXPECT_EQ(p.stmts[0]->elseBody.size(), 1u);
  EXPECT_EQ(p.stmts[1]->kind, Stmt::Kind::Loop);
  EXPECT_EQ(p.stmts[1]->within, 3);
  EXPECT_EQ(p.stmts[1]->tripBound, 10);
}

TEST(Parser, ErrorsHaveLines) {
  try {
    parseProgram("design d;\ninput a;\nx = ;\n");
    FAIL();
  } catch (const LangError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Lower, StraightLineProgram) {
  const dfg::Dfg g = compileFlat(R"(
design demo;
input a, b;
output y;
s = a + b;
y = s * 3;
)");
  EXPECT_FALSE(g.validate().has_value());
  EXPECT_EQ(g.operations().size(), 2u);
  const auto r = sim::evalDfg(g, {{"a", 2}, {"b", 3}});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outputs.at("y"), 15u);
}

TEST(Lower, SsaRenamingOnReassignment) {
  const dfg::Dfg g = compileFlat(R"(
design ssa;
input a;
output y;
v = a + 1;
v = v * 2;
y = v + 3;
)");
  const auto r = sim::evalDfg(g, {{"a", 5}});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outputs.at("y"), ((5 + 1) * 2 + 3u));
}

TEST(Lower, ConstantsDeduplicated) {
  const dfg::Dfg g = compileFlat(R"(
design k;
input a;
output y;
p = a * 3;
q = a + 3;
y = p + q;
)");
  int constCount = 0;
  for (const dfg::Node& n : g.nodes())
    if (n.kind == dfg::OpKind::Const) ++constCount;
  EXPECT_EQ(constCount, 1);
}

TEST(Lower, AttributesReachTheRootOp) {
  const dfg::Dfg g = compileFlat(R"(
design attr;
input a, b;
output m;
m = a * b [cycles=2];
)");
  const dfg::NodeId m = g.findByName("m");
  EXPECT_EQ(g.node(m).cycles, 2);
}

TEST(Lower, ConditionalArmsAreMutuallyExclusive) {
  const dfg::Dfg g = compileFlat(R"(
design cond;
input a, b;
output t, u;
if (a < b) { t = a + 1; } else { u = b + 1; }
)");
  const dfg::NodeId t = g.findByName("t");
  const dfg::NodeId u = g.findByName("u");
  ASSERT_NE(t, dfg::kNoNode);
  ASSERT_NE(u, dfg::kNoNode);
  EXPECT_TRUE(g.mutuallyExclusive(t, u));
  // The condition op itself is unconditional.
  const dfg::NodeId c = g.findByName("c1_cond");
  ASSERT_NE(c, dfg::kNoNode);
  EXPECT_TRUE(g.node(c).branchPath.empty());
}

TEST(Lower, NestedConditionals) {
  const dfg::Dfg g = compileFlat(R"(
design nest;
input a, b;
output p, q;
if (a < b) {
  if (a < 2) { p = a + 1; } else { q = a + 2; }
}
)");
  const dfg::NodeId p = g.findByName("p");
  const dfg::NodeId q = g.findByName("q");
  EXPECT_TRUE(g.mutuallyExclusive(p, q));
  EXPECT_EQ(g.node(p).branchPath, "c1.t.c2.t");
}

TEST(Lower, PhiMergeRejected) {
  EXPECT_THROW(compileFlat(R"(
design phi;
input a, b;
output v;
if (a < b) { v = a + 1; } else { v = b + 1; }
)"),
               LangError);
}

TEST(Lower, SingleArmAssignmentVisibleAfterIf) {
  const dfg::Dfg g = compileFlat(R"(
design one;
input a, b;
output y;
if (a < b) { t = a + 1; }
y = t * 2;
)");
  EXPECT_FALSE(g.validate().has_value());
  EXPECT_NE(g.findByName("y"), dfg::kNoNode);
}

TEST(Lower, UndefinedVariableRejected) {
  EXPECT_THROW(compileFlat("design e;\noutput y;\ny = nope + 1;\n"), LangError);
}

TEST(Lower, UnassignedOutputRejected) {
  EXPECT_THROW(compileFlat("design e;\ninput a;\noutput y;\nx = a + 1;\n"),
               LangError);
}

TEST(Lower, LoopBecomesChildNest) {
  const Compiled c = compile(R"(
design loopy;
input a, b;
output done;
pre = a + b;
loop l1 within 3 bound 8 { acc = pre + 1; acc = acc * 2; }
done = l1 + 0;
)");
  ASSERT_TRUE(c.hasLoops());
  ASSERT_EQ(c.nest.children.size(), 1u);
  const dfg::Dfg& body = c.nest.children[0].body;
  EXPECT_EQ(body.name(), "l1");
  EXPECT_EQ(c.nest.children[0].localTimeConstraint, 3);
  // bound 8 added increment + comparison bookkeeping.
  EXPECT_NE(body.findByName("l1_i_next"), dfg::kNoNode);
  EXPECT_NE(body.findByName("l1_i_continue"), dfg::kNoNode);
  // The parent sees a LoopSuper placeholder named l1 fed by `pre`.
  const dfg::NodeId super = c.nest.body.findByName("l1");
  ASSERT_NE(super, dfg::kNoNode);
  EXPECT_EQ(c.nest.body.node(super).kind, dfg::OpKind::LoopSuper);
  ASSERT_EQ(c.nest.body.node(super).inputs.size(), 1u);
  EXPECT_EQ(c.nest.body.node(super).inputs[0], c.nest.body.findByName("pre"));
}

TEST(Lower, LoopFoldsAndSchedules) {
  const Compiled c = compile(R"(
design loopy2;
input a;
output done;
loop l1 within 4 bound 4 { s = a * 2; s = s + 1; }
done = l1 + 1;
)");
  const dfg::Dfg folded =
      dfg::foldLoopNest(c.nest, [](const dfg::Dfg& body, int cs) {
        core::MfsOptions o;
        o.constraints.timeSteps = cs;
        const auto r = core::runMfs(body, o);
        EXPECT_TRUE(r.feasible) << r.error;
        return r.feasible ? r.steps : cs + 1;
      });
  core::MfsOptions o;
  o.constraints.timeSteps = 6;
  const auto r = core::runMfs(folded, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(Lower, CompileFlatRejectsLoops) {
  EXPECT_THROW(
      compileFlat("design l;\ninput a;\nloop x within 2 { t = a + 1; }\n"),
      LangError);
}

TEST(Lang, DiffeqInTheLanguageMatchesHandBuiltSchedule) {
  // The HAL benchmark written behaviorally; its MFS result must match the
  // hand-built DFG's (2 multipliers at T=4).
  const dfg::Dfg g = compileFlat(R"(
design diffeq_lang;
input x, y, u, dx, a;
output x1, y1, u1, cont;
m1 = 3 * x;
m2 = u * dx;
m3 = 3 * y;
m4 = m1 * m2;
m5 = dx * m3;
m6 = u * dx;
s1 = u - m4;
u1 = s1 - m5;
y1 = y + m6;
x1 = x + dx;
cont = x1 < a;
)");
  core::MfsOptions o;
  o.constraints.timeSteps = 4;
  const auto r = core::runMfs(g, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.fuCount.at(dfg::FuType::Multiplier), 2);
  const auto e = sim::evalDfg(g, {{"x", 2}, {"y", 5}, {"u", 9}, {"dx", 1}, {"a", 30}});
  ASSERT_TRUE(e.ok);
  // u1 = u - 3x*u*dx - dx*3y = 9 - 54 - 15 (mod 2^16)
  EXPECT_EQ(e.outputs.at("u1"), (9u - 54u - 15u) & 0xFFFF);
}

// Regression: the recursive descent had unbounded nesting recursion, so a
// mechanically generated expression with thousands of '(' overflowed the
// stack and crashed the process. The parser now counts nesting levels and
// raises a LangError with the offending line past kMaxNestingDepth.
//
// Depth accounting, pinned here so the boundary tests stay exact: parsing
// "y = (((...a...)));" enters statement (1), expression (2), unary (3), and
// each '(' recurses expression + unary (+2). With k parens the peak depth is
// 3 + 2k, so k = (kMaxNestingDepth - 3) / 2 is the deepest accepted input
// and k + 1 must diagnose.
std::string nestedParens(int k) {
  std::string src = "design d;\ninput a;\ny = ";
  src.append(static_cast<std::size_t>(k), '(');
  src += "a";
  src.append(static_cast<std::size_t>(k), ')');
  src += ";\n";
  return src;
}

TEST(ParserDepth, AcceptsNestingAtTheLimit) {
  constexpr int kAtLimit = (kMaxNestingDepth - 3) / 2;
  const Program p = parseProgram(nestedParens(kAtLimit));
  ASSERT_EQ(p.stmts.size(), 1u);
  EXPECT_EQ(p.stmts[0]->target, "y");
}

TEST(ParserDepth, DiagnosesNestingJustPastTheLimit) {
  constexpr int kPastLimit = (kMaxNestingDepth - 3) / 2 + 1;
  try {
    parseProgram(nestedParens(kPastLimit));
    FAIL() << "over-deep nesting must not parse";
  } catch (const LangError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nesting deeper than"), std::string::npos) << what;
    // The expression sits on line 3 of the generated source.
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(ParserDepth, DeeplyNestedBlocksDiagnoseInsteadOfCrashing) {
  // 5000 nested if-blocks: far past any plausible real input, previously a
  // guaranteed stack overflow.
  std::string src = "design d;\ninput a;\n";
  for (int i = 0; i < 5000; ++i) src += "if (a) {\n";
  src += "y = a;\n";
  for (int i = 0; i < 5000; ++i) src += "}\n";
  EXPECT_THROW(parseProgram(src), LangError);
}

}  // namespace
}  // namespace mframe::lang
