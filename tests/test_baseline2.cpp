// Tests for the ASAP baseline, slack analysis and the clock explorer.
#include <gtest/gtest.h>

#include "baseline/asap_sched.h"
#include "core/mfs.h"
#include "helpers.h"
#include "sched/clock_explorer.h"
#include "sched/slack.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe {
namespace {

using dfg::FuType;

TEST(Asap, SchedulesEveryOpAtItsAsapStep) {
  const auto r = baseline::runAsap(workloads::diffeq(), {});
  ASSERT_TRUE(r.feasible) << r.error;
  sched::Constraints c;
  c.timeSteps = r.steps;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty());
  EXPECT_EQ(r.steps, 4);
  // ASAP piles all initial multiplications into step 1.
  EXPECT_GE(r.schedule.fuCount().at(FuType::Multiplier), 3);
}

TEST(Asap, MfsBeatsAsapOnBalance) {
  // Same schedule length, strictly fewer (or equal) units of each type —
  // the motivation for balanced scheduling over FACET-style ASAP.
  for (const auto& bc : workloads::paperSuite()) {
    const auto asap = baseline::runAsap(bc.graph, bc.constraints);
    ASSERT_TRUE(asap.feasible) << bc.id;
    core::MfsOptions o;
    o.constraints = bc.constraints;
    o.constraints.timeSteps = asap.steps;
    const auto mfs = core::runMfs(bc.graph, o);
    ASSERT_TRUE(mfs.feasible) << bc.id << ": " << mfs.error;
    const auto asapFu = asap.schedule.fuCount();
    int asapTotal = 0, mfsTotal = 0;
    for (const auto& [t, n] : asapFu) asapTotal += n;
    for (const auto& [t, n] : mfs.fuCount) mfsTotal += n;
    EXPECT_LE(mfsTotal, asapTotal) << bc.id;
  }
}

TEST(Asap, MutualExclusionStillShares) {
  const auto r = baseline::runAsap(test::branchy(), {});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.fuCount().at(FuType::Adder), 1);
}

TEST(Slack, TightConstraintMakesEverythingCritical) {
  const dfg::Dfg g = test::addChain(4);
  core::MfsOptions o;
  o.constraints.timeSteps = 4;
  const auto r = core::runMfs(g, o);
  ASSERT_TRUE(r.feasible);
  const auto rep = sched::analyzeSlack(r.schedule, o.constraints);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->criticalCount, 4);
  EXPECT_DOUBLE_EQ(rep->meanTotalSlack, 0.0);
}

TEST(Slack, RelaxedConstraintCreatesSlack) {
  const dfg::Dfg g = workloads::diffeq();
  core::MfsOptions o;
  o.constraints.timeSteps = 8;
  const auto r = core::runMfs(g, o);
  ASSERT_TRUE(r.feasible);
  const auto rep = sched::analyzeSlack(r.schedule, o.constraints);
  ASSERT_TRUE(rep.has_value());
  EXPECT_GT(rep->meanTotalSlack, 0.0);
  EXPECT_EQ(rep->ops.size(), g.operations().size());
  // Slacks are frame-consistent: early and late slack both non-negative.
  for (const auto& os : rep->ops) {
    EXPECT_GE(os.earlySlack, 0);
    EXPECT_GE(os.lateSlack, 0);
  }
}

TEST(Slack, ReportNamesCriticalOps) {
  const dfg::Dfg g = test::addChain(3);
  core::MfsOptions o;
  o.constraints.timeSteps = 3;
  const auto r = core::runMfs(g, o);
  ASSERT_TRUE(r.feasible);
  const std::string s =
      sched::analyzeSlack(r.schedule, o.constraints)->toString(g);
  EXPECT_NE(s.find("critical: c1"), std::string::npos);
}

TEST(ClockExplorer, LongerClockChainsMoreOps) {
  const dfg::Dfg g = workloads::chained();  // 6-deep chain of 40ns ops
  const auto sweep = sched::sweepClock(g, {40.0, 80.0, 120.0, 240.0});
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0].steps, 6);  // one op per step
  EXPECT_EQ(sweep[1].steps, 3);  // two per step
  EXPECT_EQ(sweep[2].steps, 2);  // three per step
  EXPECT_EQ(sweep[3].steps, 1);  // the whole chain in one step
  for (const auto& p : sweep) EXPECT_TRUE(p.feasible) << p.clockNs;
}

TEST(ClockExplorer, LatencyTradeoffVisible) {
  const dfg::Dfg g = workloads::chained();
  const auto sweep = sched::sweepClock(g, {40.0, 240.0});
  // Fewer steps does not mean faster wall-clock: 6*40 = 240 == 1*240.
  EXPECT_DOUBLE_EQ(sweep[0].latencyNs, 240.0);
  EXPECT_DOUBLE_EQ(sweep[1].latencyNs, 240.0);
}

TEST(ClockExplorer, TooShortClockIsInfeasible) {
  const dfg::Dfg g = workloads::chained();  // 40ns adds
  const auto sweep = sched::sweepClock(g, {30.0});
  EXPECT_FALSE(sweep[0].feasible);  // no op fits the step at all
}

TEST(ClockExplorer, MinimumClockForStepBudget) {
  const dfg::Dfg g = workloads::chained();
  EXPECT_DOUBLE_EQ(sched::minimumClockFor(g, 3, {40, 80, 120, 240}), 80.0);
  EXPECT_DOUBLE_EQ(sched::minimumClockFor(g, 6, {40, 80, 120, 240}), 40.0);
  EXPECT_DOUBLE_EQ(sched::minimumClockFor(g, 1, {40, 80}), 0.0);  // impossible
}

}  // namespace
}  // namespace mframe
