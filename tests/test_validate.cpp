// Coverage for the translation validator: value-numbering algebra, the
// accept direction (every benchmark x every scheduler proves clean), the
// reject direction (each seeded .bind defect refutes with its documented
// EQV rule), the provenance JSON contract, and the differential check that
// validator-accepted designs simulate to the behavioral golden model.
#include "analysis/validate/validate.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "analysis/validate/bind_io.h"
#include "analysis/validate/value_numbering.h"
#include "baseline/asap_sched.h"
#include "baseline/fds.h"
#include "baseline/list_sched.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"
#include "sim/dfg_eval.h"
#include "sim/rtl_sim.h"
#include "workloads/benchmarks.h"

namespace mframe::analysis {
namespace {

bool fires(const LintReport& r, std::string_view rule) {
  return !r.byRule(rule).empty();
}

/// The clean hand binding of workloads::chained() used by every .bind test:
/// the t-chain serialised on ALU0, the u-chain on ALU1, six steps.
constexpr std::string_view kChainedBinding = R"(bind chained steps=6
alu 0 addsub16
alu 1 addsub16
op t1 step=1 alu=0
op t2 step=2 alu=0
op t3 step=3 alu=0
op t4 step=4 alu=0
op t5 step=5 alu=0
op t6 step=6 alu=0
op u1 step=1 alu=1
op u2 step=2 alu=1
)";

celllib::CellLibrary tinyLib() {
  celllib::CellLibrary lib;
  lib.addModule({"addsub16",
                 {dfg::FuType::Adder, dfg::FuType::Subtractor},
                 4400.0,
                 41.0,
                 1});
  lib.setRegCost(1800.0);
  lib.setMuxCosts({0.0, 0.0, 620.0, 950.0, 1260.0});
  return lib;
}

BoundDesign bindChained(std::string_view extra = "") {
  const dfg::Dfg g = workloads::chained();
  std::string err;
  const auto b = parseBindDesign(g, tinyLib(),
                                 std::string(kChainedBinding) + std::string(extra),
                                 &err);
  EXPECT_TRUE(b.has_value()) << err;
  return *b;
}

// ---------------------------------------------------------------------------
// Value numbering
// ---------------------------------------------------------------------------

TEST(ValueNumbering, InputsAndConstsIntern) {
  ValueNumbering vn;
  EXPECT_EQ(vn.ofInput(3), vn.ofInput(3));
  EXPECT_NE(vn.ofInput(3), vn.ofInput(4));
  EXPECT_EQ(vn.ofConst(42), vn.ofConst(42));
  EXPECT_NE(vn.ofConst(42), vn.ofConst(43));
  EXPECT_NE(vn.ofInput(3), vn.ofConst(3));
}

TEST(ValueNumbering, CommutativeOperandsNormalize) {
  ValueNumbering vn;
  const Vn a = vn.ofInput(0);
  const Vn b = vn.ofInput(1);
  EXPECT_EQ(vn.ofOp(dfg::OpKind::Add, a, b), vn.ofOp(dfg::OpKind::Add, b, a));
  EXPECT_EQ(vn.ofOp(dfg::OpKind::Mul, a, b), vn.ofOp(dfg::OpKind::Mul, b, a));
  EXPECT_NE(vn.ofOp(dfg::OpKind::Sub, a, b), vn.ofOp(dfg::OpKind::Sub, b, a));
  EXPECT_NE(vn.ofOp(dfg::OpKind::Add, a, b), vn.ofOp(dfg::OpKind::Sub, a, b));
}

TEST(ValueNumbering, FreshAndOpaqueAreUnique) {
  ValueNumbering vn;
  EXPECT_NE(vn.fresh(), vn.fresh());
  EXPECT_EQ(vn.ofOpaque(7), vn.ofOpaque(7));
  EXPECT_NE(vn.ofOpaque(7), vn.ofOpaque(8));
  EXPECT_NE(vn.ofOpaque(7), vn.fresh());
}

TEST(ValueNumbering, NumberGraphMirrorsStructure) {
  const dfg::Dfg g = test::smallDiamond();
  ValueNumbering vn;
  const std::vector<Vn> ideal = vn.numberGraph(g);
  ASSERT_EQ(ideal.size(), g.size());
  const auto s = g.findByName("s");
  const auto y = g.findByName("y");
  // Recomputing y = s * t from the node values reproduces the same number.
  const auto& ny = g.node(y);
  EXPECT_EQ(ideal[y],
            vn.ofOp(ny.kind, ideal[ny.inputs[0]], ideal[ny.inputs[1]]));
  // toString renders something readable for both ends of the spectrum.
  EXPECT_EQ(vn.toString(ideal[g.findByName("a")], g), "a");
  EXPECT_NE(vn.toString(ideal[s], g).find("+"), std::string::npos);
  EXPECT_NE(vn.toString(vn.fresh(), g).find("junk#"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Accept direction: every benchmark x every synthesis path proves clean
// ---------------------------------------------------------------------------

struct Bench {
  const char* name;
  dfg::Dfg graph;
};

std::vector<Bench> proveSuite() {
  std::vector<Bench> v;
  v.push_back({"tseng", workloads::tseng()});
  v.push_back({"chained", workloads::chained()});
  v.push_back({"diffeq", workloads::diffeq()});
  v.push_back({"fir8", workloads::fir8()});
  v.push_back({"ar", workloads::arLattice()});
  v.push_back({"ewf", workloads::ewfLike()});
  v.push_back({"fdct", workloads::fdctLike()});
  v.push_back({"iir", workloads::iirBiquads()});
  return v;
}

/// Schedule -> bindByColumns -> buildDatapath -> prove; empty report = proof.
void expectProved(const dfg::Dfg& g, const sched::Schedule& s,
                  const std::string& what) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const rtl::Datapath d =
      rtl::buildDatapath(g, lib, s, rtl::bindByColumns(g, lib, s));
  const LintReport r = proveDatapath(d);
  EXPECT_TRUE(r.empty()) << what << ":\n" << r.renderText();
}

TEST(ProveAccept, MfsaOnEveryBenchmark) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  for (const Bench& b : proveSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    core::MfsaOptions o;
    o.constraints.timeSteps = asap.steps;
    const auto r = core::runMfsa(b.graph, lib, o);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    const LintReport proof = proveDatapath(r.datapath);
    EXPECT_TRUE(proof.empty()) << b.name << " (mfsa):\n" << proof.renderText();
  }
}

TEST(ProveAccept, MfsOnEveryBenchmark) {
  for (const Bench& b : proveSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    core::MfsOptions o;
    o.constraints.timeSteps = asap.steps;
    const auto r = core::runMfs(b.graph, o);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    expectProved(b.graph, r.schedule, std::string(b.name) + " (mfs)");
  }
}

TEST(ProveAccept, AsapAndListOnEveryBenchmark) {
  for (const Bench& b : proveSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    expectProved(b.graph, asap.schedule, std::string(b.name) + " (asap)");
    const auto list = baseline::runListScheduling(b.graph, {});
    ASSERT_TRUE(list.feasible) << b.name;
    expectProved(b.graph, list.schedule, std::string(b.name) + " (list)");
  }
}

TEST(ProveAccept, ForceDirectedOnEveryBenchmark) {
  for (const Bench& b : proveSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    sched::Constraints c;
    c.timeSteps = asap.steps;
    const auto r = baseline::runForceDirected(b.graph, c);
    ASSERT_TRUE(r.feasible) << b.name << ": " << r.error;
    expectProved(b.graph, r.schedule, std::string(b.name) + " (fds)");
  }
}

// ---------------------------------------------------------------------------
// Reject direction: seeded .bind defects refute with the documented rule
// ---------------------------------------------------------------------------

TEST(ProveReject, CleanBindingProves) {
  const BoundDesign b = bindChained();
  const LintReport r = proveDatapath(b.datapath, b.fsm, b.rom);
  EXPECT_TRUE(r.empty()) << r.renderText();
}

TEST(ProveReject, SharedRegisterClobberFiresEqv002) {
  // t1 and u1 both live over (1,2] yet pinned into the same register.
  const BoundDesign b = bindChained("reg t1 0\nreg u1 0\n");
  const LintReport r = proveDatapath(b.datapath, b.fsm, b.rom);
  ASSERT_TRUE(fires(r, kEqvRegisterClobber)) << r.renderText();
  const std::vector<Diagnostic> clobbers = r.byRule(kEqvRegisterClobber);
  EXPECT_EQ(clobbers.front().severity, Severity::Error);
  EXPECT_FALSE(clobbers.front().provenance.empty());
}

TEST(ProveReject, SwappedMuxRouteFiresEqv004) {
  const BoundDesign b = bindChained("route t3 left 0\n");
  const LintReport r = proveDatapath(b.datapath, b.fsm, b.rom);
  ASSERT_TRUE(fires(r, kEqvMuxRoute)) << r.renderText();
  EXPECT_FALSE(r.byRule(kEqvMuxRoute).front().provenance.empty());
}

TEST(ProveReject, OffByOneLatchFiresEqv005) {
  const BoundDesign b = bindChained("load t2 step=3\n");
  const LintReport r = proveDatapath(b.datapath, b.fsm, b.rom);
  ASSERT_TRUE(fires(r, kEqvStepDisagreement)) << r.renderText();
  // The late latch also starves t3, which reads the register in step 3.
  EXPECT_TRUE(fires(r, kEqvOperandMismatch)) << r.renderText();
}

TEST(ProveReject, MalformedBindTextIsReported) {
  const dfg::Dfg g = workloads::chained();
  std::string err;
  EXPECT_FALSE(parseBindDesign(g, tinyLib(), "bind chained steps=6\nalu 5 nosuch\n",
                               &err)
                   .has_value());
  EXPECT_NE(err.find("line"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Provenance JSON contract
// ---------------------------------------------------------------------------

TEST(ProveJson, ProvenanceRoundTrips) {
  const BoundDesign b = bindChained("reg t1 0\nreg u1 0\n");
  const LintReport r = proveDatapath(b.datapath, b.fsm, b.rom);
  ASSERT_FALSE(r.empty());
  const std::string json = r.renderJson("chained");
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  std::string err;
  const auto parsed = parseDiagnosticsJson(json, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(*parsed, r.diagnostics());
}

// ---------------------------------------------------------------------------
// Differential: validator-accepted designs simulate to the golden model,
// a validator-refuted design diverges
// ---------------------------------------------------------------------------

std::map<std::string, sim::Word> randomInputs(const dfg::Dfg& g,
                                              std::mt19937& rng) {
  std::map<std::string, sim::Word> in;
  std::uniform_int_distribution<int> dist(0, 255);
  for (const dfg::Node& n : g.nodes())
    if (n.kind == dfg::OpKind::Input) in[n.name] = dist(rng);
  return in;
}

TEST(ProveDifferential, AcceptedDesignsMatchGoldenModel) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  std::mt19937 rng(1234);  // fixed seed: reproducible vectors
  for (const Bench& b : proveSuite()) {
    const auto asap = baseline::runAsap(b.graph, {});
    ASSERT_TRUE(asap.feasible) << b.name;
    core::MfsaOptions o;
    o.constraints.timeSteps = asap.steps;
    const auto r = core::runMfsa(b.graph, lib, o);
    ASSERT_TRUE(r.feasible) << b.name;
    ASSERT_TRUE(proveDatapath(r.datapath).empty()) << b.name;

    const rtl::ControllerFsm fsm = rtl::buildController(r.datapath);
    for (int trial = 0; trial < 3; ++trial) {
      const auto in = randomInputs(b.graph, rng);
      const auto golden = sim::evalDfg(b.graph, in);
      ASSERT_TRUE(golden.ok) << golden.error;
      const auto rtl = sim::simulateRtl(r.datapath, fsm, in);
      ASSERT_TRUE(rtl.ok) << b.name << ": " << rtl.error;
      EXPECT_EQ(rtl.outputs, golden.outputs) << b.name;
    }
  }
}

TEST(ProveDifferential, RefutedDesignDiverges) {
  // The shared-register clobber the validator flags as EQV002 is a real
  // hardware bug: u1's latch overwrites t1 before t2 reads it, so the
  // simulated t-chain (output y) computes with the wrong operand.
  const dfg::Dfg g = workloads::chained();
  const BoundDesign broken = bindChained("reg t1 0\nreg u1 0\n");
  ASSERT_TRUE(fires(proveDatapath(broken.datapath, broken.fsm, broken.rom),
                    kEqvRegisterClobber));

  std::mt19937 rng(99);
  bool diverged = false;
  for (int trial = 0; trial < 8 && !diverged; ++trial) {
    const auto in = randomInputs(g, rng);
    const auto golden = sim::evalDfg(g, in);
    ASSERT_TRUE(golden.ok) << golden.error;
    const auto rtl = sim::simulateRtl(broken.datapath, broken.fsm, in);
    diverged = !rtl.ok || rtl.outputs != golden.outputs;
  }
  EXPECT_TRUE(diverged)
      << "clobbered register never changed an output across 8 random vectors";
}

}  // namespace
}  // namespace mframe::analysis
