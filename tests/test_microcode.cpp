#include "rtl/microcode.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

namespace mframe::rtl {
namespace {

core::MfsaResult synth(const dfg::Dfg& g, int cs) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = cs;
  return core::runMfsa(g, lib, o);
}

TEST(Microcode, OneWordPerStep) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const auto rom = buildMicrocode(r.datapath, buildController(r.datapath));
  EXPECT_EQ(rom.words, 4);
  EXPECT_EQ(rom.rows.size(), 4u);
  EXPECT_GT(rom.wordBits(), 0);
  EXPECT_EQ(rom.totalBits(), 4 * rom.wordBits());
}

TEST(Microcode, SingleOpAluNeedsNoOpcodeBits) {
  // A dedicated multiplier executes only Mul: its opcode field vanishes.
  const auto r = synth(workloads::fir8(), 9);
  ASSERT_TRUE(r.feasible);
  const auto rom = buildMicrocode(r.datapath, buildController(r.datapath));
  for (const auto& a : r.datapath.alus) {
    std::set<dfg::OpKind> kinds;
    for (dfg::NodeId op : a.ops) kinds.insert(r.datapath.graph->node(op).kind);
    const std::string fieldName = mframe::util::format("alu%d.op", a.index);
    const bool hasField =
        std::any_of(rom.fields.begin(), rom.fields.end(),
                    [&](const MicrocodeField& f) { return f.name == fieldName; });
    EXPECT_EQ(hasField, kinds.size() > 1) << fieldName;
  }
}

TEST(Microcode, RegisterLoadBitsSetAtBirthSteps) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const auto fsm = buildController(r.datapath);
  const auto rom = buildMicrocode(r.datapath, fsm);
  for (const RegLoad& rl : fsm.regLoads) {
    if (rl.step < 1) continue;
    const std::string fieldName = mframe::util::format("R%d.load", rl.reg);
    auto it = std::find_if(rom.fields.begin(), rom.fields.end(),
                           [&](const MicrocodeField& f) { return f.name == fieldName; });
    ASSERT_NE(it, rom.fields.end());
    const auto f = static_cast<std::size_t>(it - rom.fields.begin());
    EXPECT_EQ(rom.rows[static_cast<std::size_t>(rl.step - 1)][f], 1);
  }
}

TEST(Microcode, SelectFieldsWideEnough) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const auto rom = buildMicrocode(r.datapath, buildController(r.datapath));
  for (const auto& a : r.datapath.alus) {
    const auto ai = static_cast<std::size_t>(a.index);
    const std::size_t sources = r.datapath.leftPort[ai].sources.size();
    if (sources <= 1) continue;
    const std::string fieldName = mframe::util::format("alu%d.selL", a.index);
    auto it = std::find_if(rom.fields.begin(), rom.fields.end(),
                           [&](const MicrocodeField& f) { return f.name == fieldName; });
    ASSERT_NE(it, rom.fields.end()) << fieldName;
    EXPECT_GE(1u << it->bits, sources);
  }
}

TEST(Microcode, AreaEstimateScalesWithBits) {
  const auto r = synth(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const auto rom = buildMicrocode(r.datapath, buildController(r.datapath));
  EXPECT_DOUBLE_EQ(rom.areaEstimate(10.0), rom.totalBits() * 10.0);
}

TEST(Microcode, ToStringListsFieldsAndRows) {
  const auto r = synth(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const std::string s =
      buildMicrocode(r.datapath, buildController(r.datapath)).toString();
  EXPECT_NE(s.find("microcode ROM"), std::string::npos);
  EXPECT_NE(s.find("step  1:"), std::string::npos);
}

}  // namespace
}  // namespace mframe::rtl
