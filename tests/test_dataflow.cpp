// The dataflow-analysis framework: worklist engine semantics (fixpoint,
// direction, widening), the four passes (constants, ranges/widths, demand,
// duplicates), the OPT diagnostics, the applyFixes rewriter — held to the
// simulator's and the translation validator's standard — and the golden
// `analyze --json` outputs for the benchmark suite.
#include "analysis/dataflow/analyze.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/analyze.h"
#include "analysis/dataflow/engine.h"
#include "analysis/lint.h"
#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "dfg/builder.h"
#include "dfg/parser.h"
#include "dfg/stats.h"
#include "helpers.h"
#include "sim/dfg_eval.h"
#include "workloads/benchmarks.h"

namespace mframe::analysis::dataflow {
namespace {

bool fires(const LintReport& r, std::string_view rule) {
  return !r.byRule(rule).empty();
}

/// Seeded with folds and dead code: c1 = 4*4 and o1 = m + c1 fold to
/// constants (OPT001, as does m = s*0 via the absorbing rule), which makes
/// s = x + y dead after folding (OPT002) — it feeds nothing else.
/// out = o1 + x stays varying, so the design still computes something.
dfg::Dfg foldable() {
  dfg::Builder b("foldable");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto k0 = b.constant(0, "k0");
  const auto k4 = b.constant(4, "k4");
  const auto c1 = b.mul(k4, k4, "c1");
  const auto s = b.add(x, y, "s");
  const auto m = b.mul(s, k0, "m");
  const auto o1 = b.add(m, c1, "o1");
  const auto out = b.add(o1, x, "out");
  b.output(out, "o");
  return std::move(b).build();
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

TEST(DataflowEngine, ForwardFixpointOnDagIsOneSweep) {
  const dfg::Dfg g = test::addChain(6);
  int visits = 0;
  analyzeConstants(g, 16, &visits);
  // Seeded in topological order, every node settles on first visit.
  EXPECT_EQ(visits, static_cast<int>(g.size()));
}

TEST(DataflowEngine, WideningTerminatesOnCyclicGraphs) {
  // Hand-build a dependence cycle (validate() would reject it; the engine
  // must still terminate): inc0 -> inc1 -> inc0.
  dfg::Dfg g("loopy");
  dfg::Node a;
  a.kind = dfg::OpKind::Inc;
  a.name = "inc0";
  const auto ia = g.addNode(a);
  dfg::Node b;
  b.kind = dfg::OpKind::Inc;
  b.name = "inc1";
  b.inputs = {ia};
  const auto ib = g.addNode(b);
  g.mutableNode(ia).inputs = {ib};
  g.freeze();

  int visits = 0;
  const auto ranges = analyzeRanges(g, 16, &visits);
  EXPECT_EQ(ranges[ia], Interval::full(16));
  EXPECT_EQ(ranges[ib], Interval::full(16));
  EXPECT_GT(visits, 2 * kWidenThreshold);  // it actually iterated
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

TEST(ConstProp, FoldsThroughArithmetic) {
  dfg::Builder b("consts");
  const auto k2 = b.constant(2, "k2");
  const auto k3 = b.constant(3, "k3");
  const auto s = b.add(k2, k3, "s");
  const auto p = b.mul(s, s, "p");
  b.output(p, "o");
  const dfg::Dfg g = std::move(b).build();

  const auto consts = analyzeConstants(g);
  EXPECT_TRUE(consts[s].isConst());
  EXPECT_EQ(consts[s].value, 5u);
  EXPECT_TRUE(consts[p].isConst());
  EXPECT_EQ(consts[p].value, 25u);
}

TEST(ConstProp, AbsorbingRulesFoldWithVaryingOperands) {
  dfg::Builder b("absorb");
  const auto x = b.input("x");
  const auto k0 = b.constant(0, "k0");
  const auto m = b.mul(x, k0, "m");      // x * 0 == 0
  const auto a = b.band(k0, x, "a");     // 0 & x == 0
  const auto d = b.div(x, k0, "d");      // x / 0 == 0 by convention
  const auto keep = b.add(x, k0, "keep");  // x + 0 is still x (varying)
  b.output(b.add(b.add(m, a, "t1"), b.add(d, keep, "t2"), "t3"), "o");
  const dfg::Dfg g = std::move(b).build();

  const auto consts = analyzeConstants(g);
  for (dfg::NodeId id : {m, a, d}) {
    EXPECT_TRUE(consts[id].isConst()) << g.node(id).name;
    EXPECT_EQ(consts[id].value, 0u) << g.node(id).name;
  }
  EXPECT_FALSE(consts[keep].isConst());
}

TEST(ConstProp, MasksAtTheAnalysisWordWidth) {
  dfg::Builder b("mask");
  const auto big = b.constant(0xFFFF, "big");
  const auto one = b.constant(1, "one");
  const auto wrap = b.add(big, one, "wrap");
  b.output(wrap, "o");
  const dfg::Dfg g = std::move(b).build();
  const auto consts = analyzeConstants(g, 16);
  ASSERT_TRUE(consts[wrap].isConst());
  EXPECT_EQ(consts[wrap].value, 0u);  // 0x10000 & 0xFFFF
}

// ---------------------------------------------------------------------------
// Ranges and widths
// ---------------------------------------------------------------------------

TEST(Ranges, DeclaredInputWidthsPropagate) {
  dfg::Builder b("narrow");
  const auto a = b.input("a", 4);  // 0..15
  const auto c = b.input("c", 4);
  const auto s = b.add(a, c, "s");       // 0..30
  const auto p = b.mul(s, s, "p");       // 0..900
  const auto cmp = b.lt(s, p, "cmp");    // 0..1
  b.output(cmp, "o");
  const dfg::Dfg g = std::move(b).build();

  const auto ranges = analyzeRanges(g);
  EXPECT_EQ(ranges[a], (Interval{0, 15}));
  EXPECT_EQ(ranges[s], (Interval{0, 30}));
  EXPECT_EQ(ranges[p], (Interval{0, 900}));
  EXPECT_EQ(ranges[cmp], (Interval{0, 1}));

  const auto widths = inferWidths(ranges);
  EXPECT_EQ(widths[a], 4);
  EXPECT_EQ(widths[s], 5);
  EXPECT_EQ(widths[p], 10);
  EXPECT_EQ(widths[cmp], 1);
}

TEST(Ranges, PossibleWraparoundClampsToFullRange) {
  dfg::Builder b("wrap");
  const auto x = b.input("x");  // full 16-bit range
  const auto y = b.input("y");
  const auto s = b.add(x, y, "s");    // may wrap
  const auto d = b.sub(x, y, "d");    // may go negative
  const auto shr = b.op(dfg::OpKind::Shr, {x, y}, "shr");  // amount varies
  b.output(b.add(s, b.add(d, shr, "t1"), "t2"), "o");
  const dfg::Dfg g = std::move(b).build();

  const auto ranges = analyzeRanges(g);
  EXPECT_EQ(ranges[s], Interval::full(16));
  EXPECT_EQ(ranges[d], Interval::full(16));
  EXPECT_EQ(ranges[shr], Interval::full(16));  // sound: 0..x.hi
}

TEST(Ranges, LogicAndShiftBounds) {
  dfg::Builder b("bits");
  const auto a = b.input("a", 8);          // 0..255
  const auto c = b.input("c", 4);          // 0..15
  const auto an = b.band(a, c, "an");      // 0..15
  const auto k2 = b.constant(2, "k2");
  const auto sl = b.op(dfg::OpKind::Shl, {c, k2}, "sl");  // 0..60
  const auto nt = b.bnot(c, "nt");         // 65520..65535
  b.output(b.add(an, b.add(sl, nt, "t1"), "t2"), "o");
  const dfg::Dfg g = std::move(b).build();

  const auto ranges = analyzeRanges(g);
  EXPECT_EQ(ranges[an], (Interval{0, 15}));
  EXPECT_EQ(ranges[sl], (Interval{0, 60}));
  EXPECT_EQ(ranges[nt], (Interval{0xFFF0, 0xFFFF}));
}

// ---------------------------------------------------------------------------
// Demand / liveness
// ---------------------------------------------------------------------------

TEST(Demand, OpsFeedingOnlyFoldsAreDead) {
  const dfg::Dfg g = foldable();
  const auto consts = analyzeConstants(g);
  const auto demand = analyzeDemand(g, consts);
  const auto needed = resultNeeded(g, demand);

  const auto s = g.findByName("s");
  const auto m = g.findByName("m");
  const auto o1 = g.findByName("o1");
  const auto out = g.findByName("out");
  EXPECT_FALSE(demand[s]) << "s only feeds the folded multiply";
  EXPECT_FALSE(demand[m]) << "m folds to 0";
  EXPECT_FALSE(demand[o1]) << "o1 folds to 16";
  EXPECT_TRUE(demand[out]);
  EXPECT_TRUE(needed[o1]) << "out still reads o1's (folded) value";
  EXPECT_FALSE(needed[m]) << "m's only consumer itself folds";
  EXPECT_FALSE(needed[s]);
}

// ---------------------------------------------------------------------------
// Duplicates
// ---------------------------------------------------------------------------

TEST(Duplicates, FindsRepeatsIncludingCommutedOperands) {
  dfg::Builder b("dups");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto a1 = b.add(x, y, "a1");
  const auto a2 = b.add(y, x, "a2");  // commuted: same value number
  const auto d1 = b.sub(x, y, "d1");
  const auto d2 = b.sub(y, x, "d2");  // NOT commutative: distinct
  b.output(b.mul(a1, a2, "m1"), "o1");
  b.output(b.mul(d1, d2, "m2"), "o2");
  const dfg::Dfg g = std::move(b).build();

  const auto groups = findDuplicateExprs(g);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].first, a1);
  ASSERT_EQ(groups[0].repeats.size(), 1u);
  EXPECT_EQ(groups[0].repeats[0], a2);
}

TEST(Duplicates, DiffeqRecomputesUTimesDx) {
  const auto groups = findDuplicateExprs(workloads::diffeq());
  ASSERT_EQ(groups.size(), 1u);  // m2 and m6 both compute u * dx
}

// ---------------------------------------------------------------------------
// OPT diagnostics
// ---------------------------------------------------------------------------

TEST(OptRules, AllFourRulesFire) {
  const DataflowResult r = lintDataflow(foldable());
  EXPECT_TRUE(fires(r.report, kOptFoldableConst));
  EXPECT_TRUE(fires(r.report, kOptDeadOp));

  const DataflowResult rd = lintDataflow(workloads::diffeq());
  EXPECT_TRUE(fires(rd.report, kOptDuplicateExpr));

  // Narrow declared input widths leave s = a + c needing only 5 of its 16
  // default bits.
  dfg::Builder b("narrow");
  const auto s = b.add(b.input("a", 4), b.input("c", 4), "s");
  b.output(s, "o");
  const DataflowResult rn = lintDataflow(std::move(b).build());
  const auto wide = rn.report.byRule(kOptOverWideOp);
  ASSERT_EQ(wide.size(), 1u);
  EXPECT_EQ(wide[0].loc.node, "s");
  EXPECT_NE(wide[0].fixit.find("width=5"), std::string::npos);
}

TEST(OptRules, CleanDesignsStaySilent) {
  for (const dfg::Dfg& g : {test::smallDiamond(), workloads::chained()}) {
    const DataflowResult r = lintDataflow(g);
    for (const RuleInfo& rule : allRules()) {
      if (rule.family != "opt") continue;
      EXPECT_FALSE(fires(r.report, rule.id)) << g.name() << " " << rule.id;
    }
  }
}

TEST(OptRules, SeverityComesFromTheRegistry) {
  const DataflowResult r = lintDataflow(workloads::diffeq());
  for (const Diagnostic& d : r.report.diagnostics())
    EXPECT_EQ(d.severity, findRule(d.rule)->severity) << d.rule;
}

// ---------------------------------------------------------------------------
// applyFixes: fold + DCE, closed under simulation and the validator
// ---------------------------------------------------------------------------

std::map<std::string, sim::Word> someInputs(const dfg::Dfg& g) {
  std::map<std::string, sim::Word> in;
  sim::Word v = 3;
  for (const dfg::Node& n : g.nodes())
    if (n.kind == dfg::OpKind::Input) {
      in[n.name] = v;
      v = v * 7 + 5;  // deterministic, spread-out values
    }
  return in;
}

TEST(ApplyFixes, FoldsAndRemovesDeadOps) {
  const dfg::Dfg g = foldable();
  const dfg::Dfg fixed = applyFixes(g, lintDataflow(g));
  EXPECT_EQ(fixed.validate(), std::nullopt);
  // s and m fed only folded consumers; both vanish.
  EXPECT_EQ(fixed.findByName("s"), dfg::kNoNode);
  EXPECT_EQ(fixed.findByName("m"), dfg::kNoNode);
  // o1 is still read by `out`, so it survives as a literal constant.
  const auto o1 = fixed.findByName("o1");
  ASSERT_NE(o1, dfg::kNoNode);
  EXPECT_EQ(fixed.node(o1).kind, dfg::OpKind::Const);
  EXPECT_EQ(fixed.node(o1).constValue, 16);
  EXPECT_NE(fixed.findByName("out"), dfg::kNoNode);
  // Inputs survive even when folding orphans them.
  EXPECT_NE(fixed.findByName("x"), dfg::kNoNode);
  EXPECT_NE(fixed.findByName("y"), dfg::kNoNode);
}

TEST(ApplyFixes, PreservesSimulatedOutputsOnBenchmarks) {
  const dfg::Dfg designs[] = {
      foldable(),          workloads::tseng(),    workloads::chained(),
      workloads::diffeq(), workloads::fir8(),     workloads::arLattice(),
      workloads::ewfLike(), workloads::fdctLike(), workloads::iirBiquads()};
  for (const dfg::Dfg& g : designs) {
    const dfg::Dfg fixed = applyFixes(g, lintDataflow(g));
    ASSERT_EQ(fixed.validate(), std::nullopt) << g.name();
    const auto in = someInputs(g);
    const auto ref = sim::evalDfg(g, in);
    const auto got = sim::evalDfg(fixed, in);
    ASSERT_TRUE(ref.ok && got.ok) << g.name();
    EXPECT_EQ(got.outputs, ref.outputs) << g.name();
  }
}

TEST(ApplyFixes, FixedDesignsStayProvable) {
  // The acceptance contract: the rewritten graph, synthesized with MFSA,
  // still passes the translation validator on every benchmark design.
  const celllib::CellLibrary lib = celllib::ncrLike();
  const dfg::Dfg designs[] = {
      foldable(),          workloads::tseng(),    workloads::chained(),
      workloads::diffeq(), workloads::fir8(),     workloads::arLattice(),
      workloads::ewfLike(), workloads::fdctLike(), workloads::iirBiquads()};
  for (const dfg::Dfg& g : designs) {
    const dfg::Dfg fixed = applyFixes(g, lintDataflow(g));
    core::MfsaOptions opts;
    opts.constraints.timeSteps = dfg::computeStats(fixed).criticalPath;
    const core::MfsaResult r = core::runMfsa(fixed, lib, opts);
    ASSERT_TRUE(r.feasible) << g.name() << ": " << r.error;
    const LintReport proof = proveDatapath(r.datapath);
    EXPECT_TRUE(proof.empty())
        << g.name() << ":\n" << proof.renderText();
  }
}

TEST(ApplyFixes, IsIdempotent) {
  const dfg::Dfg g = foldable();
  const dfg::Dfg once = applyFixes(g, lintDataflow(g));
  const dfg::Dfg twice = applyFixes(once, lintDataflow(once));
  EXPECT_EQ(dfg::serialize(once), dfg::serialize(twice));
}

// ---------------------------------------------------------------------------
// Golden `analyze --json` outputs
// ---------------------------------------------------------------------------

AnalyzeResult analyzeForGolden(const dfg::Dfg& g) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  AnalyzeOptions opts;
  opts.constraints.clockNs = 200.0;
  opts.clockSet = true;
  return analyzeDesign(g, lib, opts);
}

std::string goldenPath(const std::string& name) {
  return std::string(MFRAME_TESTS_DIR) + "/golden/analyze_" + name + ".json";
}

TEST(AnalyzeGolden, JsonIsDeterministic) {
  const dfg::Dfg g = workloads::diffeq();
  const std::string a = analyzeForGolden(g).report.renderJson(g.name());
  const std::string b = analyzeForGolden(g).report.renderJson(g.name());
  EXPECT_EQ(a, b);
}

TEST(AnalyzeGolden, BenchmarksMatchCommittedJson) {
  const dfg::Dfg designs[] = {
      workloads::tseng(),     workloads::chained(),  workloads::diffeq(),
      workloads::fir8(),      workloads::arLattice(), workloads::ewfLike(),
      workloads::fdctLike(),  workloads::iirBiquads()};
  const bool update = std::getenv("MFRAME_UPDATE_GOLDEN") != nullptr;
  for (const dfg::Dfg& g : designs) {
    const std::string json = analyzeForGolden(g).report.renderJson(g.name());
    const std::string path = goldenPath(g.name());
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << path;
      out << json;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (regenerate with MFRAME_UPDATE_GOLDEN=1)";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(json, ss.str()) << g.name();
  }
}

}  // namespace
}  // namespace mframe::analysis::dataflow
