#include "sched/report.h"

#include <gtest/gtest.h>

#include "alloc/regalloc.h"
#include "core/mfs.h"
#include "helpers.h"
#include "workloads/benchmarks.h"

namespace mframe::sched {
namespace {

core::MfsResult timeRun(const dfg::Dfg& g, int cs) {
  core::MfsOptions o;
  o.constraints.timeSteps = cs;
  return core::runMfs(g, o);
}

TEST(Report, UtilizationCountsBusySlots) {
  // 4 independent adds in 2 steps on 2 adders: 100% utilization.
  const auto r = timeRun(test::addParallel(4), 2);
  ASSERT_TRUE(r.feasible);
  const auto rep = analyzeSchedule(r.schedule);
  ASSERT_EQ(rep.utilization.size(), 1u);
  EXPECT_EQ(rep.utilization[0].instances, 2);
  EXPECT_EQ(rep.utilization[0].busySlots, 4);
  EXPECT_DOUBLE_EQ(rep.utilization[0].utilization, 1.0);
}

TEST(Report, MulticycleOpsOccupyAllTheirSlots) {
  const auto r = timeRun(workloads::arLattice(), 13);
  ASSERT_TRUE(r.feasible);
  const auto rep = analyzeSchedule(r.schedule);
  for (const auto& u : rep.utilization) {
    if (u.type != dfg::FuType::Multiplier) continue;
    EXPECT_EQ(u.busySlots, 32);  // 16 two-cycle multiplications
  }
}

TEST(Report, PeakLiveMatchesRegisterAllocation) {
  // The register-pressure peak must equal the optimal left-edge count.
  const auto r = timeRun(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const auto rep = analyzeSchedule(r.schedule);
  const auto lts =
      mframe::alloc::computeLifetimes(r.schedule.graph(), r.schedule);
  const auto regs = mframe::alloc::allocateRegisters(lts);
  EXPECT_EQ(static_cast<std::size_t>(rep.peakLive), regs.count());
}

TEST(Report, GanttMentionsEveryInstance) {
  const auto r = timeRun(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible);
  const auto rep = analyzeSchedule(r.schedule);
  EXPECT_NE(rep.gantt.find("multiplier#1"), std::string::npos);
  EXPECT_NE(rep.gantt.find("multiplier#2"), std::string::npos);
  EXPECT_NE(rep.gantt.find("adder#1"), std::string::npos);
}

TEST(Report, ToStringIsSelfContained) {
  const auto r = timeRun(test::smallDiamond(), 3);
  ASSERT_TRUE(r.feasible);
  const std::string s = analyzeSchedule(r.schedule).toString();
  EXPECT_NE(s.find("Gantt"), std::string::npos);
  EXPECT_NE(s.find("utilization"), std::string::npos);
  EXPECT_NE(s.find("register pressure"), std::string::npos);
}

TEST(Report, BalancedSchedulesBeatAsapOnPeakPressure) {
  // A balanced MFS schedule spreads work, so its peak register pressure is
  // no worse than the total-value count.
  const auto r = timeRun(workloads::fir8(), 9);
  ASSERT_TRUE(r.feasible);
  const auto rep = analyzeSchedule(r.schedule);
  EXPECT_GT(rep.peakLive, 0);
  EXPECT_LE(rep.peakLive, 16);
}

}  // namespace
}  // namespace mframe::sched
