#include <gtest/gtest.h>

#include "baseline/fds.h"
#include "baseline/list_sched.h"
#include "core/mfs.h"
#include "helpers.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe::baseline {
namespace {

using dfg::FuType;

TEST(ListSched, RespectsResourceLimits) {
  sched::Constraints c;
  c.fuLimit[FuType::Adder] = 2;
  const auto r = runListScheduling(test::addParallel(6), c);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.steps, 3);
  c.timeSteps = r.steps;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty());
}

TEST(ListSched, SerializesOnOneUnit) {
  sched::Constraints c;
  c.fuLimit[FuType::Adder] = 1;
  const auto r = runListScheduling(test::addParallel(5), c);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.steps, 5);
}

TEST(ListSched, ChainReachesCriticalPath) {
  sched::Constraints c;
  c.fuLimit[FuType::Adder] = 1;
  const auto r = runListScheduling(test::addChain(4), c);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.steps, 4);
}

TEST(ListSched, DiffeqWithTwoMultipliersMatchesMfs) {
  sched::Constraints c;
  c.fuLimit[FuType::Multiplier] = 2;
  c.fuLimit[FuType::Adder] = 1;
  c.fuLimit[FuType::Subtractor] = 1;
  c.fuLimit[FuType::Comparator] = 1;
  const auto r = runListScheduling(workloads::diffeq(), c);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.steps, 4);  // same latency MFS achieves
  c.timeSteps = r.steps;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty());
}

TEST(ListSched, HandlesMulticycle) {
  sched::Constraints c;
  c.fuLimit[FuType::Multiplier] = 2;
  c.fuLimit[FuType::Adder] = 2;
  const auto r = runListScheduling(workloads::arLattice(), c);
  ASSERT_TRUE(r.feasible) << r.error;
  c.timeSteps = r.steps;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty());
}

TEST(Fds, DiffeqAtFourStepsUsesTwoMultipliers) {
  sched::Constraints c;
  c.timeSteps = 4;
  const auto r = runForceDirected(workloads::diffeq(), c);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty());
  EXPECT_EQ(r.schedule.fuCount().at(FuType::Multiplier), 2);
}

TEST(Fds, RejectsInfeasibleConstraint) {
  sched::Constraints c;
  c.timeSteps = 2;
  const auto r = runForceDirected(test::addChain(4), c);
  EXPECT_FALSE(r.feasible);
}

TEST(Fds, BalancesIndependentOps) {
  sched::Constraints c;
  c.timeSteps = 3;
  const auto r = runForceDirected(test::addParallel(6), c);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty());
  EXPECT_EQ(r.schedule.fuCount().at(FuType::Adder), 2);
}

TEST(Fds, ValidOnTheWholeSuiteWithoutSpecialFeatures) {
  for (const auto& bc : workloads::paperSuite()) {
    if (bc.constraints.allowChaining) continue;  // FDS baseline: no chaining
    sched::Constraints c;
    c.timeSteps = bc.timeSweep.back();
    const auto r = runForceDirected(bc.graph, c);
    ASSERT_TRUE(r.feasible) << bc.id << ": " << r.error;
    EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty()) << bc.id;
  }
}

TEST(Fds, MfsMatchesOrBeatsFdsOnPeakMultipliers) {
  // The paper's pitch is MFS reaches FDS-quality schedules much faster; on
  // diffeq both should land on the classic 2-multiplier solution.
  sched::Constraints c;
  c.timeSteps = 4;
  const auto fds = runForceDirected(workloads::diffeq(), c);
  core::MfsOptions mo;
  mo.constraints.timeSteps = 4;
  const auto mfs = core::runMfs(workloads::diffeq(), mo);
  ASSERT_TRUE(fds.feasible && mfs.feasible);
  EXPECT_LE(mfs.fuCount.at(FuType::Multiplier),
            fds.schedule.fuCount().at(FuType::Multiplier));
}

}  // namespace
}  // namespace mframe::baseline
