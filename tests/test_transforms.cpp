#include "dfg/transforms.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"

namespace mframe::dfg {
namespace {

TEST(MergeSharedBranchOps, MergesIdenticalSiblingOps) {
  Dfg g = test::branchy();  // t1 and e1 are identical adds in sibling arms
  ASSERT_EQ(g.operations().size(), 3u);
  const std::size_t removed = mergeSharedBranchOps(g);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(g.operations().size(), 2u);
  EXPECT_FALSE(g.validate().has_value());
}

TEST(MergeSharedBranchOps, SurvivorHoistedToCommonPrefix) {
  Dfg g = test::branchy();
  mergeSharedBranchOps(g);
  // The surviving add is unconditional (common prefix of c1.t and c1.e).
  for (NodeId id : g.operations())
    if (g.node(id).kind == OpKind::Add) EXPECT_EQ(g.node(id).branchPath, "");
}

TEST(MergeSharedBranchOps, ConsumersRewired) {
  Dfg g = test::branchy();
  mergeSharedBranchOps(g);
  const NodeId j = g.findByName("j");
  ASSERT_NE(j, kNoNode);
  // Both operands of j now reference the single surviving add.
  EXPECT_EQ(g.node(j).inputs[0], g.node(j).inputs[1]);
}

TEST(MergeSharedBranchOps, HonorsCommutativity) {
  Builder b("comm");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.pushBranch("c1", "t");
  const auto t = b.add(x, y, "t");
  b.popBranch();
  b.pushBranch("c1", "e");
  const auto e = b.add(y, x, "e");  // swapped operands, still the same add
  b.popBranch();
  b.output(t, "ot");
  b.output(e, "oe");
  Dfg g = std::move(b).build();
  EXPECT_EQ(mergeSharedBranchOps(g), 1u);
}

TEST(MergeSharedBranchOps, DoesNotMergeNonExclusive) {
  Builder b("same-arm");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.pushBranch("c1", "t");
  b.add(x, y, "t1");
  b.add(x, y, "t2");  // same arm: both execute, keep both
  b.popBranch();
  Dfg g = std::move(b).build();
  EXPECT_EQ(mergeSharedBranchOps(g), 0u);
}

TEST(MergeSharedBranchOps, DoesNotMergeDifferentOperands) {
  Builder b("diff");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto z = b.input("z");
  b.pushBranch("c1", "t");
  b.add(x, y, "t1");
  b.popBranch();
  b.pushBranch("c1", "e");
  b.add(x, z, "e1");
  b.popBranch();
  Dfg g = std::move(b).build();
  EXPECT_EQ(mergeSharedBranchOps(g), 0u);
}

TEST(MergeSharedBranchOps, CascadesToFixpoint) {
  // Two levels: once the leaf adds merge, the dependent subs become
  // identical and merge as well.
  Builder b("cascade");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.pushBranch("c1", "t");
  const auto t1 = b.add(x, y, "t1");
  b.sub(t1, x, "t2");
  b.popBranch();
  b.pushBranch("c1", "e");
  const auto e1 = b.add(x, y, "e1");
  b.sub(e1, x, "e2");
  b.popBranch();
  Dfg g = std::move(b).build();
  EXPECT_EQ(mergeSharedBranchOps(g), 2u);
  EXPECT_EQ(g.operations().size(), 2u);
}

TEST(LoopBookkeeping, AddsIncrementAndComparison) {
  Dfg body = test::addChain(2);
  const std::size_t before = body.operations().size();
  const NodeId cmp = addLoopBookkeeping(body, "i", 10);
  EXPECT_EQ(body.operations().size(), before + 2);
  EXPECT_EQ(body.node(cmp).kind, OpKind::Lt);
  EXPECT_FALSE(body.validate().has_value());
  // The comparison consumes the incremented counter against the bound.
  const NodeId inc = body.findByName("i_next");
  ASSERT_NE(inc, kNoNode);
  EXPECT_EQ(body.node(cmp).inputs[0], inc);
}

TEST(LoopBookkeeping, ReusesExistingCounterSignal) {
  Dfg body = test::addChain(1);
  const std::size_t before = body.size();
  addLoopBookkeeping(body, "x0", 4);  // x0 is already an input
  EXPECT_EQ(body.size(), before + 3);  // bound, inc, cmp — no new input
}

TEST(FoldLoopNest, InnermostFirstAndCyclesAssigned) {
  // Outer body has a LoopSuper placeholder named like the inner body.
  LoopNest inner;
  inner.body = test::addChain(3);
  inner.body.setName("inner");
  inner.localTimeConstraint = 3;

  LoopNest outer;
  {
    Dfg g("outer");
    Node in;
    in.kind = OpKind::Input;
    in.name = "x";
    const NodeId xi = g.addNode(in);
    Node sp;
    sp.kind = OpKind::LoopSuper;
    sp.name = "inner";
    sp.inputs = {xi};
    const NodeId spId = g.addNode(sp);
    Node post;
    post.kind = OpKind::Not;
    post.name = "post";
    post.inputs = {spId};
    g.addNode(post);
    outer.body = std::move(g);
  }
  outer.localTimeConstraint = 6;
  outer.children.push_back(std::move(inner));

  int calls = 0;
  const Dfg folded = foldLoopNest(outer, [&](const Dfg& body, int cs) {
    ++calls;
    EXPECT_EQ(body.name(), "inner");
    EXPECT_EQ(cs, 3);
    return 3;
  });
  EXPECT_EQ(calls, 1);
  const NodeId sp = folded.findByName("inner");
  ASSERT_NE(sp, kNoNode);
  EXPECT_EQ(folded.node(sp).cycles, 3);
}

TEST(FoldLoopNest, RejectsSchedulerOverrun) {
  LoopNest inner;
  inner.body = test::addChain(2);
  inner.body.setName("inner");
  inner.localTimeConstraint = 2;
  LoopNest outer;
  {
    Dfg g("outer");
    Node sp;
    sp.kind = OpKind::LoopSuper;
    sp.name = "inner";
    g.addNode(sp);
    outer.body = std::move(g);
  }
  outer.children.push_back(std::move(inner));
  EXPECT_THROW(
      foldLoopNest(outer, [](const Dfg&, int) { return 5; }),  // > constraint
      std::runtime_error);
}

TEST(FoldLoopNest, RejectsMissingPlaceholder) {
  LoopNest inner;
  inner.body = test::addChain(1);
  inner.body.setName("nameless");
  inner.localTimeConstraint = 2;
  LoopNest outer;
  outer.body = test::addChain(1);  // no LoopSuper node at all
  outer.children.push_back(std::move(inner));
  EXPECT_THROW(foldLoopNest(outer, [](const Dfg&, int) { return 1; }),
               std::runtime_error);
}

}  // namespace
}  // namespace mframe::dfg
