#include "celllib/library_io.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"

namespace mframe::celllib {
namespace {

constexpr const char* kSample = R"(# a tiny library
library tiny
reg 1500
mux 0 0 500 800 1000
module add16 area=2900 delay=40 caps=add
module alu area=4500 delay=45 caps=+,-,cmp
module mulp area=17000 delay=90 caps=mul stages=2
)";

TEST(LibraryIo, ParsesModulesAndTables) {
  const CellLibrary lib = parseLibrary(kSample);
  EXPECT_DOUBLE_EQ(lib.regCost(), 1500.0);
  EXPECT_DOUBLE_EQ(lib.muxCost(3), 800.0);
  ASSERT_EQ(lib.modules().size(), 3u);
  const Module& alu = lib.module(1);
  EXPECT_EQ(alu.caps.size(), 3u);
  EXPECT_TRUE(alu.supports(dfg::FuType::Adder));
  EXPECT_TRUE(alu.supports(dfg::FuType::Comparator));
  EXPECT_EQ(lib.module(2).stages, 2);
}

TEST(LibraryIo, CapabilityTokensAcceptAllSpellings) {
  const CellLibrary lib = parseLibrary(
      "library t\nreg 1\nmux 0 0 10\n"
      "module m area=1 caps=adder,+,sub\n");
  EXPECT_TRUE(lib.module(0).supports(dfg::FuType::Adder));
  EXPECT_TRUE(lib.module(0).supports(dfg::FuType::Subtractor));
}

TEST(LibraryIo, SerializeRoundTrips) {
  const CellLibrary orig = parseLibrary(kSample);
  const CellLibrary again = parseLibrary(serializeLibrary(orig, "tiny"));
  ASSERT_EQ(again.modules().size(), orig.modules().size());
  for (std::size_t i = 0; i < orig.modules().size(); ++i) {
    EXPECT_EQ(again.module(static_cast<ModuleId>(i)).caps,
              orig.module(static_cast<ModuleId>(i)).caps);
    EXPECT_DOUBLE_EQ(again.module(static_cast<ModuleId>(i)).areaUm2,
                     orig.module(static_cast<ModuleId>(i)).areaUm2);
    EXPECT_EQ(again.module(static_cast<ModuleId>(i)).stages,
              orig.module(static_cast<ModuleId>(i)).stages);
  }
  EXPECT_DOUBLE_EQ(again.regCost(), orig.regCost());
  EXPECT_DOUBLE_EQ(again.muxCost(4), orig.muxCost(4));
}

TEST(LibraryIo, NcrLikeRoundTrips) {
  const CellLibrary orig = ncrLike();
  const CellLibrary again = parseLibrary(serializeLibrary(orig, "ncr_like"));
  EXPECT_EQ(again.modules().size(), orig.modules().size());
  EXPECT_DOUBLE_EQ(again.maxModuleArea(), orig.maxModuleArea());
  EXPECT_DOUBLE_EQ(again.muxCost(6), orig.muxCost(6));
}

TEST(LibraryIo, ErrorsCarryLineNumbers) {
  try {
    parseLibrary("library t\nreg 1\nmux 0 0 10\nmodule m area=1 caps=wibble\n");
    FAIL();
  } catch (const LibraryError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wibble"), std::string::npos);
  }
}

TEST(LibraryIo, StructuralErrorsRejected) {
  EXPECT_THROW(parseLibrary("reg 1\n"), LibraryError);             // no header
  EXPECT_THROW(parseLibrary("library t\nmux 0 0 5\nmodule m area=1 caps=add\n"),
               LibraryError);                                      // no reg
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmodule m area=1 caps=add\n"),
               LibraryError);                                      // no mux
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmux 0 0 5\n"), LibraryError);
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmux 1 0 5\nmodule m area=1 caps=add\n"),
               LibraryError);  // mux[0] != 0
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmux 0 0 5\nmodule m caps=add\n"),
               LibraryError);  // missing area
}

}  // namespace
}  // namespace mframe::celllib
