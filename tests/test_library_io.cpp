#include "celllib/library_io.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"

namespace mframe::celllib {
namespace {

constexpr const char* kSample = R"(# a tiny library
library tiny
reg 1500
mux 0 0 500 800 1000
module add16 area=2900 delay=40 caps=add
module alu area=4500 delay=45 caps=+,-,cmp
module mulp area=17000 delay=90 caps=mul stages=2
)";

TEST(LibraryIo, ParsesModulesAndTables) {
  const CellLibrary lib = parseLibrary(kSample);
  EXPECT_DOUBLE_EQ(lib.regCost(), 1500.0);
  EXPECT_DOUBLE_EQ(lib.muxCost(3), 800.0);
  ASSERT_EQ(lib.modules().size(), 3u);
  const Module& alu = lib.module(1);
  EXPECT_EQ(alu.caps.size(), 3u);
  EXPECT_TRUE(alu.supports(dfg::FuType::Adder));
  EXPECT_TRUE(alu.supports(dfg::FuType::Comparator));
  EXPECT_EQ(lib.module(2).stages, 2);
}

TEST(LibraryIo, CapabilityTokensAcceptAllSpellings) {
  const CellLibrary lib = parseLibrary(
      "library t\nreg 1\nmux 0 0 10\n"
      "module m area=1 caps=adder,+,sub\n");
  EXPECT_TRUE(lib.module(0).supports(dfg::FuType::Adder));
  EXPECT_TRUE(lib.module(0).supports(dfg::FuType::Subtractor));
}

TEST(LibraryIo, SerializeRoundTrips) {
  const CellLibrary orig = parseLibrary(kSample);
  const CellLibrary again = parseLibrary(serializeLibrary(orig, "tiny"));
  ASSERT_EQ(again.modules().size(), orig.modules().size());
  for (std::size_t i = 0; i < orig.modules().size(); ++i) {
    EXPECT_EQ(again.module(static_cast<ModuleId>(i)).caps,
              orig.module(static_cast<ModuleId>(i)).caps);
    EXPECT_DOUBLE_EQ(again.module(static_cast<ModuleId>(i)).areaUm2,
                     orig.module(static_cast<ModuleId>(i)).areaUm2);
    EXPECT_EQ(again.module(static_cast<ModuleId>(i)).stages,
              orig.module(static_cast<ModuleId>(i)).stages);
  }
  EXPECT_DOUBLE_EQ(again.regCost(), orig.regCost());
  EXPECT_DOUBLE_EQ(again.muxCost(4), orig.muxCost(4));
}

TEST(LibraryIo, NcrLikeRoundTrips) {
  const CellLibrary orig = ncrLike();
  const CellLibrary again = parseLibrary(serializeLibrary(orig, "ncr_like"));
  EXPECT_EQ(again.modules().size(), orig.modules().size());
  EXPECT_DOUBLE_EQ(again.maxModuleArea(), orig.maxModuleArea());
  EXPECT_DOUBLE_EQ(again.muxCost(6), orig.muxCost(6));
}

TEST(LibraryIo, ErrorsCarryLineNumbers) {
  try {
    parseLibrary("library t\nreg 1\nmux 0 0 10\nmodule m area=1 caps=wibble\n");
    FAIL();
  } catch (const LibraryError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wibble"), std::string::npos);
  }
}

// Regression: numeric attributes used to flow through bare strtod, so
// "delay=abc" silently became 0.0 — rewriting chaining decisions and masking
// TIM001 downstream. Every numeric token is now strict: trailing garbage,
// non-finite values, overflow and negatives are parse errors naming the
// offending token.
TEST(LibraryIo, BadNumericAttributesRejected) {
  const char* cases[] = {
      "library t\nreg abc\nmux 0 0 5\nmodule m area=1 caps=add\n",
      "library t\nreg 1x\nmux 0 0 5\nmodule m area=1 caps=add\n",
      "library t\nreg 1\nmux 0 0 5z\nmodule m area=1 caps=add\n",
      "library t\nreg 1\nmux 0 0 nan\nmodule m area=1 caps=add\n",
      "library t\nreg 1\nmux 0 0 5\nmodule m area=abc caps=add\n",
      "library t\nreg 1\nmux 0 0 5\nmodule m area=1 delay=abc caps=add\n",
      "library t\nreg 1\nmux 0 0 5\nmodule m area=1 delay=40ns caps=add\n",
      "library t\nreg 1\nmux 0 0 5\nmodule m area=1e999 caps=add\n",  // overflow
      "library t\nreg 1\nmux 0 0 5\nmodule m area=inf caps=add\n",
      "library t\nreg 1\nmux 0 0 5\nmodule m area=1 caps=add stages=two\n",
      "library t\nreg 1\nmux 0 0 5\nmodule m area=1 caps=add stages=99999999999999999999\n",
  };
  for (const char* text : cases)
    EXPECT_THROW(parseLibrary(text), LibraryError) << text;
}

TEST(LibraryIo, BadNumericErrorNamesTheToken) {
  try {
    parseLibrary("library t\nreg 1\nmux 0 0 5\n"
                 "module m area=1 delay=abc caps=add\n");
    FAIL();
  } catch (const LibraryError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'abc'"), std::string::npos) << what;
    EXPECT_NE(what.find("delay"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  }
}

// Negativity splits between the parser and lint: reg/mux costs have no lint
// rule, so a negative value is a parse error; module area/delay are the
// LIB002/LIB003 rules' business, so a well-formed negative still parses
// (the broken.lib fixture depends on that).
TEST(LibraryIo, NegativeNumericAttributesSplitParserVsLint) {
  EXPECT_THROW(
      parseLibrary("library t\nreg -5\nmux 0 0 5\nmodule m area=1 caps=add\n"),
      LibraryError);
  EXPECT_THROW(
      parseLibrary("library t\nreg 1\nmux 0 0 -5\nmodule m area=1 caps=add\n"),
      LibraryError);
  const CellLibrary negArea = parseLibrary(
      "library t\nreg 1\nmux 0 0 5\nmodule m area=-2 delay=-1 caps=add\n");
  EXPECT_DOUBLE_EQ(negArea.module(0).areaUm2, -2.0);
  EXPECT_DOUBLE_EQ(negArea.module(0).delayNs, -1.0);
}

// The parsed header name attributes every error — no more "library '?'".
TEST(LibraryIo, ErrorsNameTheLibrary) {
  try {
    parseLibrary("library mylib\nreg 1\nmux 0 0 5\n");  // no modules
    FAIL();
  } catch (const LibraryError& e) {
    EXPECT_NE(std::string(e.what()).find("library 'mylib'"),
              std::string::npos)
        << e.what();
  }
  try {
    parseLibrary("library mylib\nreg bad\n");
    FAIL();
  } catch (const LibraryError& e) {
    EXPECT_NE(std::string(e.what()).find("library 'mylib'"),
              std::string::npos)
        << e.what();
  }
}

TEST(LibraryIo, NameSurvivesRoundTrip) {
  const CellLibrary lib = parseLibrary(kSample);
  EXPECT_EQ(lib.name(), "tiny");
  // serializeLibrary's default name argument emits lib.name().
  const CellLibrary again = parseLibrary(serializeLibrary(lib));
  EXPECT_EQ(again.name(), "tiny");
  EXPECT_EQ(ncrLike().name(), "ncr_like");
}

// Property: serialize ∘ parse is the identity on serialized text — parse the
// sample, serialize, parse again, serialize again; the two texts must be
// byte-identical (a canonical form), across a spread of generated libraries.
TEST(LibraryIo, SerializeParseSerializeIsStable) {
  for (int variant = 0; variant < 8; ++variant) {
    CellLibrary lib;
    lib.setName("gen" + std::to_string(variant));
    lib.setRegCost(100.0 + 7.0 * variant);
    lib.setMuxCosts({0.0, 0.0, 50.0 + variant, 80.0 + 2.0 * variant,
                     100.0 + 3.0 * variant});
    for (int m = 0; m <= variant % 3; ++m) {
      Module mod;
      mod.name = "m" + std::to_string(m);
      mod.areaUm2 = 1000.0 + 13.0 * m + variant;
      mod.delayNs = 10.0 + m;
      mod.stages = 1 + (variant + m) % 2;
      mod.caps = {m % 2 == 0 ? dfg::FuType::Adder : dfg::FuType::Multiplier};
      lib.addModule(std::move(mod));
    }
    const std::string once = serializeLibrary(lib);
    const std::string twice = serializeLibrary(parseLibrary(once));
    EXPECT_EQ(once, twice) << "variant " << variant;
  }
}

TEST(LibraryIo, StructuralErrorsRejected) {
  EXPECT_THROW(parseLibrary("reg 1\n"), LibraryError);             // no header
  EXPECT_THROW(parseLibrary("library t\nmux 0 0 5\nmodule m area=1 caps=add\n"),
               LibraryError);                                      // no reg
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmodule m area=1 caps=add\n"),
               LibraryError);                                      // no mux
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmux 0 0 5\n"), LibraryError);
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmux 1 0 5\nmodule m area=1 caps=add\n"),
               LibraryError);  // mux[0] != 0
  EXPECT_THROW(parseLibrary("library t\nreg 1\nmux 0 0 5\nmodule m caps=add\n"),
               LibraryError);  // missing area
}

}  // namespace
}  // namespace mframe::celllib
