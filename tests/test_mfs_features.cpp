// MFS with the Section-5 synthesis features: conditionals, chaining,
// multicycle operations, pipelining and loop folding.
#include <gtest/gtest.h>

#include "core/mfs.h"
#include "dfg/builder.h"
#include "dfg/transforms.h"
#include "helpers.h"
#include "pipeline/functional.h"
#include "pipeline/structural.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe::core {
namespace {

using dfg::FuType;

int fu(const MfsResult& r, FuType t) {
  auto it = r.fuCount.find(t);
  return it == r.fuCount.end() ? 0 : it->second;
}

TEST(MfsFeatures, MutuallyExclusiveBranchesShareOneUnit) {
  // Section 5.1: ops in different arms "can be executed on the same type of
  // FU and scheduled into the same control step without increasing the
  // required number of FUs".
  dfg::Builder b("cond");
  const auto x = b.input("x");
  const auto y = b.input("y");
  b.pushBranch("c1", "t");
  const auto t1 = b.add(x, y, "t1");
  const auto t2 = b.add(t1, x, "t2");
  b.popBranch();
  b.pushBranch("c1", "e");
  const auto e1 = b.add(y, x, "e1");
  const auto e2 = b.add(e1, y, "e2");
  b.popBranch();
  b.output(t2, "ot");
  b.output(e2, "oe");
  const dfg::Dfg g = std::move(b).build();

  MfsOptions o;
  o.constraints.timeSteps = 2;
  const auto r = runMfs(g, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(fu(r, FuType::Adder), 1);  // 4 adds, 2 steps, but exclusive arms
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(MfsFeatures, ChainingMakesTightConstraintFeasible) {
  const dfg::Dfg g = workloads::chained();
  MfsOptions plain;
  plain.constraints.timeSteps = 4;
  EXPECT_FALSE(runMfs(g, plain).feasible);  // 6-deep chain needs 6 steps

  MfsOptions chain = plain;
  chain.constraints.allowChaining = true;
  chain.constraints.clockNs = 100.0;
  const auto r = runMfs(g, chain);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, chain.constraints).empty());
  EXPECT_EQ(fu(r, FuType::Adder), 2);
  EXPECT_EQ(fu(r, FuType::Subtractor), 1);
}

TEST(MfsFeatures, ChainingAtThreeStepsStillBalanced) {
  MfsOptions o;
  o.constraints.timeSteps = 3;
  o.constraints.allowChaining = true;
  o.constraints.clockNs = 100.0;
  const auto r = runMfs(workloads::chained(), o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(MfsFeatures, MulticycleOperationsStayContiguous) {
  MfsOptions o;
  o.constraints.timeSteps = 13;
  const auto r = runMfs(workloads::arLattice(), o);
  ASSERT_TRUE(r.feasible) << r.error;
  // The verifier enforces contiguity + occupancy over both cycles.
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
  const dfg::Dfg& g = r.schedule.graph();
  for (dfg::NodeId id : g.operations()) {
    if (g.node(id).cycles == 2) {
      EXPECT_LE(r.schedule.stepOf(id) + 1, r.steps);
    }
  }
}

TEST(MfsFeatures, StructuralPipeliningCutsMultiplierCount) {
  const dfg::Dfg g = workloads::ewfLike();
  MfsOptions plain;
  plain.constraints.timeSteps = 17;
  const auto rPlain = runMfs(g, plain);
  ASSERT_TRUE(rPlain.feasible) << rPlain.error;

  MfsOptions piped = plain;
  piped.constraints = pipeline::withStructuralPipelining(
      piped.constraints, {FuType::Multiplier});
  piped.constraints.timeSteps = 17;
  const auto rPiped = runMfs(g, piped);
  ASSERT_TRUE(rPiped.feasible) << rPiped.error;
  EXPECT_TRUE(sched::verifySchedule(rPiped.schedule, piped.constraints).empty());
  EXPECT_LE(fu(rPiped, FuType::Multiplier), fu(rPlain, FuType::Multiplier));
}

TEST(MfsFeatures, FunctionalPipeliningBoundsFollowLatency) {
  // 8 independent adds folded at L: at least ceil(8/L) adders are needed,
  // and MFS should achieve exactly that for an independent set.
  const dfg::Dfg g = test::addParallel(8);
  for (int latency : {2, 4}) {
    const auto r = pipeline::runFunctionalPipelinedMfs(g, 8, latency);
    ASSERT_TRUE(r.feasible) << r.error;
    EXPECT_EQ(r.fuCount.at(FuType::Adder), 8 / latency) << "L=" << latency;
    sched::Constraints vc;
    vc.timeSteps = 8;
    vc.latency = latency;
    EXPECT_TRUE(sched::verifySchedule(r.mfs.schedule, vc).empty());
  }
}

TEST(MfsFeatures, FunctionalPipeliningDiffeq) {
  const auto r = pipeline::runFunctionalPipelinedMfs(workloads::diffeq(), 6, 3);
  ASSERT_TRUE(r.feasible) << r.error;
  sched::Constraints vc;
  vc.timeSteps = 6;
  vc.latency = 3;
  EXPECT_TRUE(sched::verifySchedule(r.mfs.schedule, vc).empty());
  // Six multiplications every 3 steps: at least two multipliers.
  EXPECT_GE(r.fuCount.at(FuType::Multiplier), 2);
}

TEST(MfsFeatures, FoldedLoopSchedulesAsOneMulticycleOp) {
  // Build an inner loop (3-add chain), fold it into an outer body, then
  // schedule the outer body with MFS as the BodyScheduler.
  dfg::LoopNest inner;
  inner.body = test::addChain(3);
  inner.body.setName("inner");
  inner.localTimeConstraint = 3;

  dfg::LoopNest outer;
  {
    dfg::Dfg g("outerBody");
    dfg::Node in;
    in.kind = dfg::OpKind::Input;
    in.name = "x";
    const dfg::NodeId xi = g.addNode(in);
    dfg::Node sp;
    sp.kind = dfg::OpKind::LoopSuper;
    sp.name = "inner";
    sp.inputs = {xi};
    const dfg::NodeId spId = g.addNode(sp);
    dfg::Node post;
    post.kind = dfg::OpKind::Not;
    post.name = "post";
    post.inputs = {spId};
    g.addNode(post);
    g.markOutput(2, "post");
    outer.body = std::move(g);
  }
  outer.localTimeConstraint = 5;
  outer.children.push_back(std::move(inner));

  const dfg::Dfg folded = dfg::foldLoopNest(outer, [](const dfg::Dfg& body, int cs) {
    MfsOptions o;
    o.constraints.timeSteps = cs;
    const auto r = runMfs(body, o);
    EXPECT_TRUE(r.feasible) << r.error;
    return r.steps;
  });
  const dfg::NodeId super = folded.findByName("inner");
  ASSERT_NE(super, dfg::kNoNode);
  EXPECT_EQ(folded.node(super).cycles, 3);

  MfsOptions o;
  o.constraints.timeSteps = 5;
  const auto r = runMfs(folded, o);
  ASSERT_TRUE(r.feasible) << r.error;
  // The super-node occupies 3 consecutive steps, then `post` runs.
  EXPECT_GE(r.schedule.stepOf(folded.findByName("post")),
            r.schedule.stepOf(super) + 3);
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(MfsFeatures, MergedConditionalsReduceWork) {
  dfg::Dfg g = test::branchy();
  const std::size_t before = g.operations().size();
  dfg::mergeSharedBranchOps(g);
  ASSERT_LT(g.operations().size(), before);
  MfsOptions o;
  o.constraints.timeSteps = 2;
  const auto r = runMfs(g, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

}  // namespace
}  // namespace mframe::core
