#include "rtl/verilog.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "workloads/benchmarks.h"

namespace mframe::rtl {
namespace {

std::string synthVerilog(const dfg::Dfg& g, int cs) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = cs;
  const auto r = core::runMfsa(g, lib, o);
  EXPECT_TRUE(r.feasible) << r.error;
  const ControllerFsm fsm = buildController(r.datapath);
  return toVerilog(r.datapath, fsm);
}

TEST(Verilog, ModuleSkeleton) {
  const std::string v = synthVerilog(test::smallDiamond(), 3);
  EXPECT_NE(v.find("module diamond("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input clk, rst;"), std::string::npos);
}

TEST(Verilog, PortsForInputsAndOutputs) {
  const std::string v = synthVerilog(test::smallDiamond(), 3);
  EXPECT_NE(v.find("in_a"), std::string::npos);
  EXPECT_NE(v.find("out_y"), std::string::npos);
  EXPECT_NE(v.find("out_f"), std::string::npos);
}

TEST(Verilog, StateMachineCasesForEveryActiveStep) {
  const std::string v = synthVerilog(test::smallDiamond(), 3);
  EXPECT_NE(v.find("8'd1: begin"), std::string::npos);
  EXPECT_NE(v.find("8'd2: begin"), std::string::npos);
  EXPECT_NE(v.find("8'd3: begin"), std::string::npos);
}

TEST(Verilog, RegistersDeclared) {
  const std::string v = synthVerilog(test::smallDiamond(), 3);
  EXPECT_NE(v.find("reg [15:0] R0;"), std::string::npos);
}

TEST(Verilog, OperationsAppearWithComments) {
  const std::string v = synthVerilog(test::smallDiamond(), 3);
  EXPECT_NE(v.find("// y"), std::string::npos);  // the mul op annotated
}

TEST(Verilog, WidthParameterRespected) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = 3;
  const auto r = core::runMfsa(test::smallDiamond(), lib, o);
  ASSERT_TRUE(r.feasible);
  const std::string v = toVerilog(r.datapath, buildController(r.datapath), 32);
  EXPECT_NE(v.find("[31:0]"), std::string::npos);
  EXPECT_EQ(v.find("[15:0]"), std::string::npos);
}

TEST(Verilog, BalancedBeginEnd) {
  const std::string v = synthVerilog(workloads::diffeq(), 4);
  std::size_t begins = 0, ends = 0;
  for (std::size_t p = v.find("begin"); p != std::string::npos;
       p = v.find("begin", p + 1))
    ++begins;
  for (std::size_t p = v.find("end"); p != std::string::npos;
       p = v.find("end", p + 1))
    ++ends;
  // "end", "endcase", "endmodule" all contain "end"; every begin has an end
  // and there are exactly 2 endcase + 1 endmodule extras.
  EXPECT_EQ(ends, begins + 3);
}

}  // namespace
}  // namespace mframe::rtl
