#include "sched/timeframes.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"
#include "workloads/random_dfg.h"

namespace mframe::sched {
namespace {

using dfg::NodeId;

TEST(TimeFrames, ChainAsapAlapAndMobility) {
  const dfg::Dfg g = test::addChain(3);
  Constraints c;
  c.timeSteps = 5;
  const auto tf = computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->criticalSteps(), 3);

  const NodeId c1 = g.findByName("c1");
  const NodeId c3 = g.findByName("c3");
  EXPECT_EQ(tf->asap(c1), 1);
  EXPECT_EQ(tf->alap(c1), 3);  // 2 ops must still follow
  EXPECT_EQ(tf->asap(c3), 3);
  EXPECT_EQ(tf->alap(c3), 5);
  EXPECT_EQ(tf->mobility(c1), 2);
}

TEST(TimeFrames, ZeroMobilityOnCriticalPathAtTightConstraint) {
  const dfg::Dfg g = test::addChain(4);
  Constraints c;
  c.timeSteps = 4;
  const auto tf = computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  for (NodeId id : g.operations()) EXPECT_EQ(tf->mobility(id), 0);
}

TEST(TimeFrames, InfeasibleConstraintReported) {
  const dfg::Dfg g = test::addChain(5);
  Constraints c;
  c.timeSteps = 3;
  std::string err;
  EXPECT_FALSE(computeTimeFrames(g, c, &err).has_value());
  EXPECT_NE(err.find("critical path"), std::string::npos);
}

TEST(TimeFrames, MulticycleStretchesThePath) {
  dfg::Builder b("mc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto m = b.mul(x, y, "m", 2);  // 2 cycles
  const auto a = b.add(m, x, "a");
  b.output(a, "o");
  const dfg::Dfg g = std::move(b).build();

  Constraints c;
  c.timeSteps = 5;
  const auto tf = computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->criticalSteps(), 3);  // mul occupies 1-2, add at 3
  EXPECT_EQ(tf->asap(g.findByName("a")), 3);
  // ALAP start of the mul leaves room for its 2 cycles plus the add.
  EXPECT_EQ(tf->alap(g.findByName("m")), 3);  // occupies 3-4, add at 5
}

TEST(TimeFrames, ChainingCompressesCriticalPath) {
  const dfg::Dfg g = test::addChain(4);  // 4 dependent 40ns adds
  Constraints chained;
  chained.timeSteps = 2;
  chained.allowChaining = true;
  chained.clockNs = 100.0;  // two adds per step
  const auto tf = computeTimeFrames(g, chained);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->criticalSteps(), 2);

  Constraints plain;
  plain.timeSteps = 2;
  EXPECT_FALSE(computeTimeFrames(g, plain).has_value());
}

TEST(TimeFrames, ChainingRespectsClockBudget) {
  const dfg::Dfg g = test::addChain(4);
  Constraints c;
  c.allowChaining = true;
  c.clockNs = 90.0;  // 2*40 fits, but barely — still two per step
  const auto tf2 = computeTimeFrames(g, c);
  ASSERT_TRUE(tf2.has_value());
  EXPECT_EQ(tf2->criticalSteps(), 2);

  c.clockNs = 79.0;  // only one 40ns add per step
  const auto tf1 = computeTimeFrames(g, c);
  ASSERT_TRUE(tf1.has_value());
  EXPECT_EQ(tf1->criticalSteps(), 4);
}

TEST(TimeFrames, UpperBoundFromAsapAlapPeaks) {
  const dfg::Dfg g = test::addParallel(6);
  Constraints c;
  c.timeSteps = 2;
  const auto tf = computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  // All 6 adds sit in step 1 under ASAP (and step 2 under ALAP).
  EXPECT_EQ(tf->upperBound(dfg::FuType::Adder), 6);
}

TEST(TimeFrames, UnconstrainedUsesCriticalPath) {
  const dfg::Dfg g = test::addChain(3);
  Constraints c;  // timeSteps = 0
  const auto tf = computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  for (NodeId id : g.operations()) EXPECT_EQ(tf->mobility(id), 0);
}

class TimeFrameInvariants : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TimeFrameInvariants, AlapNeverBeforeAsapAndWithinBounds) {
  workloads::RandomDfgOptions o;
  o.seed = GetParam();
  o.numOps = 24;
  o.twoCyclePercent = 30;
  o.mulPercent = 30;
  const dfg::Dfg g = workloads::randomDfg(o);

  Constraints c;
  c.timeSteps = 0;
  const auto probe = computeTimeFrames(g, c);
  ASSERT_TRUE(probe.has_value());
  c.timeSteps = probe->criticalSteps() + 3;
  const auto tf = computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  for (dfg::NodeId id : g.operations()) {
    EXPECT_LE(tf->asap(id), tf->alap(id));
    EXPECT_GE(tf->asap(id), 1);
    EXPECT_LE(tf->alap(id) + g.node(id).cycles - 1, c.timeSteps);
    // Precedence on the extreme schedules.
    for (dfg::NodeId p : g.opPreds(id)) {
      EXPECT_GE(tf->asap(id), tf->asap(p) + g.node(p).cycles);
      EXPECT_GE(tf->alap(id), tf->alap(p) + g.node(p).cycles);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeFrameInvariants,
                         ::testing::Range<std::uint32_t>(1, 13));

}  // namespace
}  // namespace mframe::sched
