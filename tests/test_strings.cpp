#include "util/strings.h"

#include <gtest/gtest.h>

namespace mframe::util {
namespace {

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto p = split("a,,b", ',');
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], "a");
  EXPECT_EQ(p[1], "");
  EXPECT_EQ(p[2], "b");
}

TEST(Strings, SplitTrimsPieces) {
  const auto p = split(" a . b ", '.');
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], "a");
  EXPECT_EQ(p[1], "b");
}

TEST(Strings, SplitWsDropsEmpties) {
  const auto p = splitWs("  one\ttwo   three ");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[2], "three");
}

TEST(Strings, SplitWsEmptyInput) { EXPECT_TRUE(splitWs("   ").empty()); }

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("abcdef", "abc"));
  EXPECT_FALSE(startsWith("ab", "abc"));
  EXPECT_TRUE(startsWith("x", ""));
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> v{"p", "q", "r"};
  EXPECT_EQ(join(v, "."), "p.q.r");
  EXPECT_EQ(split(join(v, "."), '.'), v);
}

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}, ","), ""); }

TEST(Strings, FormatBehavesLikePrintf) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(Strings, ParseSignedLongAcceptsOnlyWholeIntegers) {
  long v = 99;
  EXPECT_TRUE(parseSignedLong("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parseSignedLong("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parseSignedLong("0", v));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(parseSignedLong("", v));
  EXPECT_FALSE(parseSignedLong("-", v));
  EXPECT_FALSE(parseSignedLong("abc", v));
  EXPECT_FALSE(parseSignedLong("1x", v));
  EXPECT_FALSE(parseSignedLong("--3", v));
  EXPECT_FALSE(parseSignedLong("4 2", v));
}

TEST(Strings, ParseDoubleRequiresFullConsumptionAndFiniteness) {
  double v = 0.0;
  EXPECT_TRUE(parseDouble("1.5", v));
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(parseDouble("-2", v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_TRUE(parseDouble("1e3", v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_TRUE(parseDouble("0", v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_FALSE(parseDouble("", v));
  EXPECT_FALSE(parseDouble("abc", v));
  // The classic strtod trap: a numeric prefix with trailing garbage parses
  // to the prefix when the end pointer goes unchecked. Full consumption is
  // required here.
  EXPECT_FALSE(parseDouble("30x", v));
  EXPECT_FALSE(parseDouble("1.5.2", v));
  EXPECT_FALSE(parseDouble("1e999", v));  // ERANGE overflow
  EXPECT_FALSE(parseDouble("nan", v));
  EXPECT_FALSE(parseDouble("inf", v));
}

TEST(Strings, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(parseLong("123"), 123);
  EXPECT_EQ(parseLong("0"), 0);
  EXPECT_EQ(parseLong(""), -1);
  EXPECT_EQ(parseLong("12x"), -1);
  EXPECT_EQ(parseLong("-3"), -1);
}

TEST(Strings, ParseLongRejectsOverflowInsteadOfWrapping) {
  // strtol would saturate (or worse, wrap) here; the digit-accumulation
  // parser detects the would-overflow multiply and rejects.
  EXPECT_EQ(parseLong("99999999999999999999999999"), -1);
  EXPECT_EQ(parseLong("9223372036854775808"), -1);  // LONG_MAX + 1 (LP64)
  EXPECT_EQ(parseLong("9223372036854775807"),
            9223372036854775807L);                  // LONG_MAX itself is fine
  EXPECT_EQ(parseLong("0000000000000000000123"), 123);  // leading zeros ok
}

}  // namespace
}  // namespace mframe::util
