// End-to-end flows: text -> DFG -> MFS/MFSA -> controller -> Verilog, plus
// combined-feature designs (conditionals + loops + chaining together).
// Every synthesized datapath is also pushed through the translation
// validator (analysis::proveDatapath) — an empty report is the referee's
// sign-off that the structure computes the source DFG.
#include <gtest/gtest.h>

#include "analysis/validate/validate.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "dfg/dot.h"
#include "dfg/parser.h"
#include "dfg/transforms.h"
#include "helpers.h"
#include "rtl/controller.h"
#include "rtl/verify.h"
#include "rtl/verilog.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe {
namespace {

TEST(Integration, TextToVerilog) {
  const dfg::Dfg g = dfg::parse(R"(
dfg accum
input x0
input x1
input x2
const 2 two
op mul p0 x0 two
op mul p1 x1 two
op add s0 p0 p1
op add s1 s0 x2
output y s1
)");
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = 3;
  const auto r = core::runMfsa(g, lib, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(
      rtl::verifyDatapath(r.datapath, o.constraints, rtl::DesignStyle::Unrestricted)
          .empty());
  const analysis::LintReport proof = analysis::proveDatapath(r.datapath);
  EXPECT_TRUE(proof.empty()) << proof.renderText();
  const auto fsm = rtl::buildController(r.datapath);
  const std::string v = rtl::toVerilog(r.datapath, fsm);
  EXPECT_NE(v.find("module accum("), std::string::npos);
  EXPECT_NE(v.find("out_y"), std::string::npos);
}

TEST(Integration, DotExportRanksByScheduleStep) {
  const dfg::Dfg g = test::smallDiamond();
  core::MfsOptions o;
  o.constraints.timeSteps = 3;
  const auto r = core::runMfs(g, o);
  ASSERT_TRUE(r.feasible);
  const std::string dot = dfg::toDot(g, r.schedule.stepMap());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
  EXPECT_NE(dot.find("@1"), std::string::npos);
}

TEST(Integration, ConditionalLoopChainingCombined) {
  // A loop body with a conditional (shared op across arms) and chainable
  // tail, folded into an outer graph and pushed through MFS + MFSA.
  dfg::Builder ib("body");
  const auto x = ib.input("x");
  const auto k = ib.input("k");
  ib.pushBranch("c1", "t");
  const auto t1 = ib.add(x, k, "t1");
  const auto t2 = ib.mul(t1, k, "t2");
  ib.popBranch();
  ib.pushBranch("c1", "e");
  const auto e1 = ib.add(x, k, "e1");  // shared with t1 -> merged
  const auto e2 = ib.sub(e1, k, "e2");
  ib.popBranch();
  const auto j = ib.add(t2, e2, "j");
  ib.output(j, "j");
  dfg::Dfg body = std::move(ib).build();
  dfg::addLoopBookkeeping(body, "i", 8);
  EXPECT_EQ(dfg::mergeSharedBranchOps(body), 1u);

  dfg::LoopNest inner;
  inner.body = body;
  inner.body.setName("loop1");
  inner.localTimeConstraint = 4;

  dfg::LoopNest top;
  {
    dfg::Dfg g("top");
    dfg::Node in;
    in.kind = dfg::OpKind::Input;
    in.name = "seed";
    const auto seed = g.addNode(in);
    dfg::Node sp;
    sp.kind = dfg::OpKind::LoopSuper;
    sp.name = "loop1";
    sp.inputs = {seed};
    const auto spId = g.addNode(sp);
    dfg::Node post;
    post.kind = dfg::OpKind::Inc;
    post.name = "final";
    post.inputs = {spId};
    const auto p = g.addNode(post);
    g.markOutput(p, "final");
    top.body = std::move(g);
  }
  top.localTimeConstraint = 6;
  top.children.push_back(std::move(inner));

  const dfg::Dfg folded = dfg::foldLoopNest(top, [](const dfg::Dfg& b, int cs) {
    core::MfsOptions o;
    o.constraints.timeSteps = cs;
    const auto r = core::runMfs(b, o);
    EXPECT_TRUE(r.feasible) << r.error;
    return r.feasible ? r.steps : cs + 1;
  });

  core::MfsOptions o;
  o.constraints.timeSteps = 6;
  const auto r = core::runMfs(folded, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(Integration, SerializeBenchmarksRoundTripThroughScheduling) {
  // Text round-trip must not change scheduling results.
  const dfg::Dfg g1 = workloads::diffeq();
  const dfg::Dfg g2 = dfg::parse(dfg::serialize(g1));
  core::MfsOptions o;
  o.constraints.timeSteps = 4;
  const auto r1 = core::runMfs(g1, o);
  const auto r2 = core::runMfs(g2, o);
  ASSERT_TRUE(r1.feasible && r2.feasible);
  EXPECT_EQ(r1.fuCount, r2.fuCount);
}

TEST(Integration, MfsaScheduleAgreesWithMfsLatency) {
  // MFSA shares the time-frame machinery, so at the same constraint its
  // schedule also fits — no op beyond cs.
  static const celllib::CellLibrary lib = celllib::ncrLike();
  for (int cs : {4, 6}) {
    core::MfsaOptions o;
    o.constraints.timeSteps = cs;
    const auto r = core::runMfsa(workloads::diffeq(), lib, o);
    ASSERT_TRUE(r.feasible) << r.error;
    const dfg::Dfg& g = *r.datapath.graph;
    for (dfg::NodeId id : g.operations())
      EXPECT_LE(r.datapath.schedule.stepOf(id) + g.node(id).cycles - 1, cs);
  }
}

TEST(Integration, ChainedBenchmarkFullFlow) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = 4;
  o.constraints.allowChaining = true;
  o.constraints.clockNs = 100.0;
  const auto r = core::runMfsa(workloads::chained(), lib, o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(rtl::verifyDatapath(r.datapath, o.constraints,
                                  rtl::DesignStyle::Unrestricted)
                  .empty());
  const analysis::LintReport proof = analysis::proveDatapath(r.datapath);
  EXPECT_TRUE(proof.empty()) << proof.renderText();
  const auto fsm = rtl::buildController(r.datapath);
  EXPECT_EQ(fsm.microOps.size(), r.datapath.graph->operations().size());
}

}  // namespace
}  // namespace mframe
