#include "sched/schedule_io.h"

#include <gtest/gtest.h>

#include "core/mfs.h"
#include "helpers.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe::sched {
namespace {

Schedule goodSchedule(const dfg::Dfg& g, int cs) {
  core::MfsOptions o;
  o.constraints.timeSteps = cs;
  const auto r = core::runMfs(g, o);
  EXPECT_TRUE(r.feasible);
  return r.schedule;
}

TEST(ScheduleIo, RoundTripsExactly) {
  const dfg::Dfg g = workloads::diffeq();
  const Schedule s = goodSchedule(g, 5);
  std::string error;
  const auto again = parseSchedule(g, serializeSchedule(s), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->numSteps(), s.numSteps());
  for (dfg::NodeId id : g.operations()) {
    EXPECT_EQ(again->stepOf(id), s.stepOf(id));
    EXPECT_EQ(again->columnOf(id), s.columnOf(id));
  }
  // And the reload still verifies.
  Constraints c;
  c.timeSteps = s.numSteps();
  EXPECT_TRUE(verifySchedule(*again, c).empty());
}

TEST(ScheduleIo, RejectsWrongDesignName) {
  const dfg::Dfg g = workloads::diffeq();
  const dfg::Dfg other = workloads::tseng();
  const Schedule s = goodSchedule(g, 5);
  std::string error;
  EXPECT_FALSE(parseSchedule(other, serializeSchedule(s), &error).has_value());
  EXPECT_NE(error.find("does not match"), std::string::npos);
}

TEST(ScheduleIo, RejectsUnknownSignal) {
  const dfg::Dfg g = test::smallDiamond();
  std::string error;
  EXPECT_FALSE(parseSchedule(g,
                             "schedule diamond steps=3\n"
                             "place nothere step=1 col=1\n",
                             &error)
                   .has_value());
  EXPECT_NE(error.find("unknown signal"), std::string::npos);
}

TEST(ScheduleIo, RejectsOutOfRangeAndDuplicates) {
  const dfg::Dfg g = test::smallDiamond();
  std::string error;
  EXPECT_FALSE(parseSchedule(g,
                             "schedule diamond steps=3\n"
                             "place s step=9 col=1\n",
                             &error)
                   .has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
  EXPECT_FALSE(parseSchedule(g,
                             "schedule diamond steps=3\n"
                             "place s step=1 col=1\nplace s step=2 col=1\n",
                             &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(ScheduleIo, RejectsMissingHeaderAndBadStatements) {
  const dfg::Dfg g = test::smallDiamond();
  std::string error;
  EXPECT_FALSE(parseSchedule(g, "place s step=1 col=1\n", &error).has_value());
  EXPECT_FALSE(parseSchedule(g, "schedule diamond steps=3\nzap\n", &error)
                   .has_value());
  EXPECT_FALSE(
      parseSchedule(g, "schedule diamond steps=3\nplace a step=1 col=1\n",
                    &error)
          .has_value());  // 'a' is an input, not an operation
}

TEST(ScheduleIo, CommentsIgnored) {
  const dfg::Dfg g = test::smallDiamond();
  const auto s = parseSchedule(g,
                               "# saved schedule\nschedule diamond steps=3\n"
                               "place s step=1 col=1  # the add\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->stepOf(g.findByName("s")), 1);
}

}  // namespace
}  // namespace mframe::sched
