#include "sched/priority.h"

#include <gtest/gtest.h>

#include "core/mfs.h"
#include "dfg/builder.h"
#include "helpers.h"
#include "workloads/random_dfg.h"

namespace mframe::sched {
namespace {

using dfg::NodeId;

std::size_t posOf(const std::vector<NodeId>& v, NodeId x) {
  return static_cast<std::size_t>(
      std::find(v.begin(), v.end(), x) - v.begin());
}

TEST(Priority, AlapStepIsTheOuterKey) {
  const dfg::Dfg g = test::addChain(3);  // c1 -> c2 -> c3
  Constraints c;
  c.timeSteps = 5;
  const auto tf = *computeTimeFrames(g, c);
  const auto order = priorityOrder(g, tf);
  EXPECT_LT(posOf(order, g.findByName("c1")), posOf(order, g.findByName("c2")));
  EXPECT_LT(posOf(order, g.findByName("c2")), posOf(order, g.findByName("c3")));
}

TEST(Priority, LowerMobilityWinsWithinAStep) {
  // Both ops have ALAP = 2; the chained one (mobility 0 at cs=2) must come
  // before the free one (mobility 1).
  dfg::Builder b("mob");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto head = b.add(x, y, "head");
  const auto tail = b.add(head, y, "tail");  // asap 2, alap 2
  const auto freeOp = b.sub(x, y, "freeOp"); // asap 1, alap 2
  b.output(tail, "o1");
  b.output(freeOp, "o2");
  const dfg::Dfg g = std::move(b).build();

  Constraints c;
  c.timeSteps = 2;
  const auto tf = *computeTimeFrames(g, c);
  ASSERT_EQ(tf.alap(tail), 2);
  ASSERT_EQ(tf.alap(freeOp), 2);
  const auto order = priorityOrder(g, tf);
  EXPECT_LT(posOf(order, tail), posOf(order, freeOp));
}

TEST(Priority, MulticycleReversalRule) {
  // Two 2-cycle multiplications with ALAP equal and mobilities differing by
  // one (< k = 2): the paper reverses the rule — higher mobility first.
  dfg::Builder b("rev");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto m1 = b.mul(x, y, "m1", 2);      // free: asap 1
  const auto pre = b.add(x, y, "pre");
  const auto m2 = b.mul(pre, y, "m2", 2);    // asap 2
  const auto join = b.add(m1, m2, "join");
  b.output(join, "o");
  const dfg::Dfg g = std::move(b).build();

  Constraints c;
  c.timeSteps = 5;
  const auto tf = *computeTimeFrames(g, c);
  ASSERT_EQ(tf.alap(m1), tf.alap(m2));
  ASSERT_EQ(std::abs(tf.mobility(m1) - tf.mobility(m2)), 1);
  const bool m1MoreMobile = tf.mobility(m1) > tf.mobility(m2);

  const auto rev = priorityOrder(g, tf, PriorityRule::Mobility);
  const auto plain = priorityOrder(g, tf, PriorityRule::MobilityNoReverse);
  // Reversed rule: the more mobile multiplication first...
  EXPECT_EQ(posOf(rev, m1) < posOf(rev, m2), m1MoreMobile);
  // ...while the plain rule puts the less mobile one first.
  EXPECT_EQ(posOf(plain, m1) < posOf(plain, m2), !m1MoreMobile);
}

TEST(Priority, InsertionOrderAblationIsIdentity) {
  const dfg::Dfg g = test::smallDiamond();
  Constraints c;
  c.timeSteps = 4;
  const auto tf = *computeTimeFrames(g, c);
  const auto opsSpan = g.operations();
  EXPECT_EQ(priorityOrder(g, tf, PriorityRule::InsertionOrder),
            std::vector<dfg::NodeId>(opsSpan.begin(), opsSpan.end()));
}

TEST(Priority, CoversEveryOperationExactlyOnce) {
  const dfg::Dfg g = test::smallDiamond();
  Constraints c;
  c.timeSteps = 4;
  const auto tf = *computeTimeFrames(g, c);
  auto order = priorityOrder(g, tf);
  std::sort(order.begin(), order.end());
  const auto opsSpan = g.operations();
  std::vector<dfg::NodeId> ops(opsSpan.begin(), opsSpan.end());
  std::sort(ops.begin(), ops.end());
  EXPECT_EQ(order, ops);
}

class TopoConsistency : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TopoConsistency, TopoConsistentOrderNeverInvertsDependencies) {
  workloads::RandomDfgOptions o;
  o.seed = GetParam();
  o.numOps = 30;
  o.twoCyclePercent = 25;
  const dfg::Dfg g = workloads::randomDfg(o);
  Constraints c;
  const auto probe = computeTimeFrames(g, c);
  ASSERT_TRUE(probe.has_value());
  c.timeSteps = probe->criticalSteps() + 2;
  const auto tf = *computeTimeFrames(g, c);

  const auto order = core::topoConsistentOrder(g, priorityOrder(g, tf));
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), g.operations().size());
  std::map<NodeId, std::size_t> pos;
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (NodeId id : *order)
    for (NodeId p : g.opPreds(id)) EXPECT_LT(pos[p], pos[id]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoConsistency,
                         ::testing::Range<std::uint32_t>(1, 9));

}  // namespace
}  // namespace mframe::sched
