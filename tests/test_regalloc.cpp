#include "alloc/regalloc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace mframe::alloc {
namespace {

Lifetime lt(dfg::NodeId p, int birth, int death) {
  Lifetime l;
  l.producer = p;
  l.birth = birth;
  l.death = death;
  l.needsRegister = death > birth;
  return l;
}

/// Maximum number of simultaneously live signals — the lower bound (and,
/// for interval graphs, the optimum) of the register count.
std::size_t cliqueBound(const std::vector<Lifetime>& v) {
  std::size_t best = 0;
  for (const Lifetime& probe : v) {
    if (!probe.needsRegister) continue;
    std::size_t live = 0;
    for (const Lifetime& o : v)
      if (o.needsRegister && o.birth <= probe.birth && probe.birth < o.death)
        ++live;
    best = std::max(best, live);
  }
  return best;
}

TEST(RegAlloc, DisjointLifetimesShareOneRegister) {
  const std::vector<Lifetime> v{lt(0, 0, 2), lt(1, 2, 4), lt(2, 4, 6)};
  const auto ra = allocateRegisters(v);
  EXPECT_EQ(ra.count(), 1u);
  EXPECT_EQ(ra.registers[0].size(), 3u);
}

TEST(RegAlloc, OverlappingLifetimesSplit) {
  const std::vector<Lifetime> v{lt(0, 0, 3), lt(1, 1, 4), lt(2, 2, 5)};
  EXPECT_EQ(allocateRegisters(v).count(), 3u);
}

TEST(RegAlloc, MixedCaseIsOptimal) {
  // Two overlapping pairs, but pairs are disjoint from each other: 2 regs.
  const std::vector<Lifetime> v{lt(0, 0, 2), lt(1, 1, 3), lt(2, 3, 5),
                                lt(3, 4, 6)};
  EXPECT_EQ(allocateRegisters(v).count(), 2u);
}

TEST(RegAlloc, SignalsWithoutRegisterNeedAreIgnored) {
  std::vector<Lifetime> v{lt(0, 1, 1), lt(1, 2, 2)};
  for (auto& l : v) l.needsRegister = false;
  EXPECT_EQ(allocateRegisters(v).count(), 0u);
}

TEST(RegAlloc, RegisterOfFindsAssignment) {
  const std::vector<Lifetime> v{lt(0, 0, 2), lt(1, 1, 3)};
  const auto ra = allocateRegisters(v);
  EXPECT_NE(ra.registerOf(0), -1);
  EXPECT_NE(ra.registerOf(1), -1);
  EXPECT_NE(ra.registerOf(0), ra.registerOf(1));
  EXPECT_EQ(ra.registerOf(99), -1);
}

TEST(RegAlloc, NoRegisterHoldsOverlappingSignals) {
  const std::vector<Lifetime> v{lt(0, 0, 5), lt(1, 1, 2), lt(2, 2, 3),
                                lt(3, 3, 7), lt(4, 0, 1)};
  const auto ra = allocateRegisters(v);
  for (const auto& reg : ra.registers)
    for (std::size_t i = 0; i < reg.size(); ++i)
      for (std::size_t j = i + 1; j < reg.size(); ++j)
        EXPECT_FALSE(v[reg[i]].overlaps(v[reg[j]]));
}

class RegAllocOptimality : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RegAllocOptimality, ActivitySelectionMatchesTheCliqueBound) {
  // For interval conflicts the greedy is optimal: register count equals the
  // maximum overlap depth. The paper relies on this (REAL/left-edge).
  std::mt19937 rng(GetParam());
  std::vector<Lifetime> v;
  for (dfg::NodeId i = 0; i < 40; ++i) {
    const int birth = std::uniform_int_distribution<int>(0, 20)(rng);
    const int death = birth + std::uniform_int_distribution<int>(1, 6)(rng);
    v.push_back(lt(i, birth, death));
  }
  const auto ra = allocateRegisters(v);
  EXPECT_EQ(ra.count(), cliqueBound(v));
  // Every register-needing lifetime is assigned exactly once.
  std::size_t assigned = 0;
  for (const auto& reg : ra.registers) assigned += reg.size();
  EXPECT_EQ(assigned, v.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegAllocOptimality,
                         ::testing::Range<std::uint32_t>(1, 17));

}  // namespace
}  // namespace mframe::alloc
