#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "dfg/builder.h"
#include "dfg/parser.h"
#include "helpers.h"
#include "rtl/controller.h"
#include "sim/dfg_eval.h"
#include "sim/rtl_sim.h"
#include "workloads/benchmarks.h"

namespace mframe::sim {
namespace {

TEST(EvalOp, ArithmeticMasksToWidth) {
  EXPECT_EQ(evalOp(dfg::OpKind::Add, 0xFFFF, 1), 0u);
  EXPECT_EQ(evalOp(dfg::OpKind::Sub, 0, 1), 0xFFFFu);
  EXPECT_EQ(evalOp(dfg::OpKind::Mul, 0x100, 0x100), 0u);  // 2^16 wraps
  EXPECT_EQ(evalOp(dfg::OpKind::Mul, 3, 5), 15u);
}

TEST(EvalOp, DivisionByZeroIsZero) {
  EXPECT_EQ(evalOp(dfg::OpKind::Div, 42, 0), 0u);
  EXPECT_EQ(evalOp(dfg::OpKind::Div, 42, 5), 8u);
}

TEST(EvalOp, RelationalsAreBoolean) {
  EXPECT_EQ(evalOp(dfg::OpKind::Lt, 2, 3), 1u);
  EXPECT_EQ(evalOp(dfg::OpKind::Ge, 2, 3), 0u);
  EXPECT_EQ(evalOp(dfg::OpKind::Eq, 7, 7), 1u);
}

TEST(EvalOp, ShiftsModuloWidth) {
  EXPECT_EQ(evalOp(dfg::OpKind::Shl, 1, 4), 16u);
  EXPECT_EQ(evalOp(dfg::OpKind::Shl, 1, 16), 1u);  // 16 % 16 == 0
  EXPECT_EQ(evalOp(dfg::OpKind::Shr, 16, 2), 4u);
}

TEST(EvalOp, WiderWordsSupported) {
  EXPECT_EQ(evalOp(dfg::OpKind::Add, 0xFFFF, 1, 32), 0x10000u);
}

TEST(DfgEval, DiamondComputesCorrectly) {
  const dfg::Dfg g = test::smallDiamond();
  // y = (a+b)*(c-d); f = y < lim
  const auto r = evalDfg(g, {{"a", 3}, {"b", 4}, {"c", 10}, {"d", 2}, {"lim", 100}});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.outputs.at("y"), 56u);
  EXPECT_EQ(r.outputs.at("f"), 1u);
}

TEST(DfgEval, MissingInputsDefaultToZero) {
  const dfg::Dfg g = test::smallDiamond();
  const auto r = evalDfg(g, {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outputs.at("y"), 0u);
}

TEST(DfgEval, ConstantsRespected) {
  const auto g = dfg::parse("dfg k\ninput x\nconst 7 k7\nop add s x k7\noutput o s\n");
  const auto r = evalDfg(g, {{"x", 5}});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.outputs.at("o"), 12u);
}

TEST(DfgEval, LoopSuperRejected) {
  dfg::Dfg g("loopy");
  dfg::Node sp;
  sp.kind = dfg::OpKind::LoopSuper;
  sp.name = "l";
  g.addNode(sp);
  const auto r = evalDfg(g, {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("LoopSuper"), std::string::npos);
}

// ---------------------------------------------------------------------------

core::MfsaResult synth(const dfg::Dfg& g, int cs,
                       sched::Constraints base = {}) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints = base;
  o.constraints.timeSteps = cs;
  return core::runMfsa(g, lib, o);
}

void expectEquivalent(const dfg::Dfg& g, const core::MfsaResult& r,
                      const std::map<std::string, Word>& inputs) {
  ASSERT_TRUE(r.feasible) << r.error;
  const auto fsm = rtl::buildController(r.datapath);
  const auto rtlOut = simulateRtl(r.datapath, fsm, inputs);
  ASSERT_TRUE(rtlOut.ok) << rtlOut.error;
  const auto ref = evalDfg(g, inputs);
  ASSERT_TRUE(ref.ok) << ref.error;
  for (const auto& [name, value] : ref.outputs)
    EXPECT_EQ(rtlOut.outputs.at(name), value) << "output " << name;
}

TEST(RtlSim, DiamondMatchesReference) {
  const dfg::Dfg g = test::smallDiamond();
  expectEquivalent(g, synth(g, 3),
                   {{"a", 3}, {"b", 4}, {"c", 10}, {"d", 2}, {"lim", 100}});
}

TEST(RtlSim, DiffeqMatchesReferenceAtSeveralConstraints) {
  const dfg::Dfg g = workloads::diffeq();
  const std::map<std::string, Word> in{
      {"x", 2}, {"y", 5}, {"u", 9}, {"dx", 1}, {"a", 30}};
  for (int cs : {4, 5, 8}) expectEquivalent(g, synth(g, cs), in);
}

TEST(RtlSim, FirComputesConvolution) {
  const dfg::Dfg g = workloads::fir8();
  std::map<std::string, Word> in;
  Word expect = 0;
  for (int i = 0; i < 8; ++i) {
    in["x" + std::to_string(i)] = static_cast<Word>(i + 2);
    expect += static_cast<Word>(i + 1) * static_cast<Word>(i + 2);
  }
  const auto r = synth(g, 9);
  ASSERT_TRUE(r.feasible);
  const auto fsm = rtl::buildController(r.datapath);
  const auto out = simulateRtl(r.datapath, fsm, in);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.outputs.at("y"), expect & 0xFFFF);
}

TEST(RtlSim, ChainedDesignMatchesReference) {
  sched::Constraints base;
  base.allowChaining = true;
  base.clockNs = 100.0;
  const dfg::Dfg g = workloads::chained();
  expectEquivalent(g, synth(g, 4, base),
                   {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4},
                    {"e", 5}, {"f", 6}, {"g", 7}, {"h", 8}});
}

TEST(RtlSim, MulticycleArFilterMatchesReference) {
  const dfg::Dfg g = workloads::arLattice();
  expectEquivalent(g, synth(g, 13), {{"p0", 3}, {"q0", 7}});
}

TEST(RtlSim, EwfMatchesReference) {
  const dfg::Dfg g = workloads::ewfLike();
  std::map<std::string, Word> in;
  for (int i = 0; i < 8; ++i) in["v" + std::to_string(i)] = static_cast<Word>(11 * i + 1);
  expectEquivalent(g, synth(g, 18), in);
}

TEST(RtlSim, BothStylesAgree) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const dfg::Dfg g = workloads::tseng();
  const std::map<std::string, Word> in{{"a", 5}, {"b", 6}, {"c", 20}, {"d", 3},
                                       {"e", 1}, {"f", 2}, {"g", 9}, {"h", 4}};
  for (auto style :
       {rtl::DesignStyle::Unrestricted, rtl::DesignStyle::NoSelfLoop}) {
    core::MfsaOptions o;
    o.constraints.timeSteps = 4;
    o.style = style;
    const auto r = core::runMfsa(g, lib, o);
    expectEquivalent(g, r, in);
  }
}

}  // namespace
}  // namespace mframe::sim
