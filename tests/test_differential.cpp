// Differential regression for DFG-storage and scheduler-internals changes:
// the eight paper benchmarks must produce bit-identical MFS/MFSA schedules,
// datapath summaries and engine counters (mfsa.*, liapunov.*, mux.*) no
// matter how the graph is stored or how the move frame is enumerated. The
// golden files were generated before the SoA/CSR storage refactor; any drift
// means an algorithmic change leaked into the paper-scale path.
//
// Regenerate (only for an acknowledged algorithm change) with
// MFRAME_UPDATE_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "sched/timeframes.h"
#include "trace/trace.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

namespace mframe {
namespace {

std::vector<dfg::Dfg> suite() {
  std::vector<dfg::Dfg> out;
  out.push_back(workloads::tseng());
  out.push_back(workloads::chained());
  out.push_back(workloads::diffeq());
  out.push_back(workloads::fir8());
  out.push_back(workloads::arLattice());
  out.push_back(workloads::ewfLike());
  out.push_back(workloads::fdctLike());
  out.push_back(workloads::iirBiquads());
  return out;
}

/// The engine counters the differential contract pins exactly.
std::string counterBlock() {
  std::string out;
  for (const auto& [name, value] : trace::counterSnapshot()) {
    const bool pinned = name.rfind("mfsa.", 0) == 0 ||
                        name.rfind("liapunov.", 0) == 0 ||
                        name.rfind("mux.", 0) == 0;
    if (pinned)
      out += util::format("  %s = %llu\n", std::string(name).c_str(),
                          static_cast<unsigned long long>(value));
  }
  return out;
}

std::string fuCountBlock(const std::map<dfg::FuType, int>& fu) {
  std::string out;
  for (const auto& [t, n] : fu)
    out += util::format("  %s x%d\n", std::string(dfg::fuTypeName(t)).c_str(), n);
  return out;
}

std::string renderBenchmark(const dfg::Dfg& g) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  std::string tfError;
  sched::Constraints probe;
  const auto tf = sched::computeTimeFrames(g, probe, &tfError);
  EXPECT_TRUE(tf.has_value()) << g.name() << ": " << tfError;
  if (!tf) return {};
  const int cs = tf->criticalSteps() + 1;  // one step of real mobility

  std::string out = util::format("design %s cs %d\n", g.name().c_str(), cs);

  {  // MFS, time-constrained.
    core::MfsOptions o;
    o.constraints.timeSteps = cs;
    o.mode = core::MfsLiapunov::Mode::TimeConstrained;
    trace::resetCounters();
    const auto r = runMfs(g, o);
    EXPECT_TRUE(r.feasible) << g.name() << ": " << r.error;
    out += "== mfs time-constrained ==\n";
    out += r.schedule.toString();
    out += util::format("steps %d restarts %d\n", r.steps, r.restarts);
    out += fuCountBlock(r.fuCount);
    out += counterBlock();
  }

  {  // MFS, resource-constrained (latency minimization, derived bounds).
    core::MfsOptions o;
    o.mode = core::MfsLiapunov::Mode::ResourceConstrained;
    trace::resetCounters();
    const auto r = runMfs(g, o);
    EXPECT_TRUE(r.feasible) << g.name() << ": " << r.error;
    out += "== mfs resource-constrained ==\n";
    out += r.schedule.toString();
    out += util::format("steps %d restarts %d\n", r.steps, r.restarts);
    out += fuCountBlock(r.fuCount);
    out += counterBlock();
  }

  {  // MFSA, default weights, mux interconnect.
    core::MfsaOptions o;
    o.constraints.timeSteps = cs;
    trace::resetCounters();
    const auto r = runMfsa(g, lib, o);
    EXPECT_TRUE(r.feasible) << g.name() << ": " << r.error;
    out += "== mfsa ==\n";
    out += r.datapath.schedule.toString();
    out += util::format("steps %d restarts %d\n", r.steps, r.restarts);
    out += "alus: " + r.datapath.aluSummary() + "\n";
    out += util::format("regs %zu\n", r.datapath.regs.count());
    out += util::format("cost alu %.3f reg %.3f mux %.3f total %.3f\n",
                        r.cost.aluArea, r.cost.regArea, r.cost.muxArea,
                        r.cost.total);
    out += counterBlock();
  }
  return out;
}

std::string goldenPath(const std::string& name) {
  return std::string(MFRAME_TESTS_DIR) + "/golden/sched_" + name + ".txt";
}

TEST(DifferentialGolden, RenderIsDeterministic) {
  const dfg::Dfg g = workloads::diffeq();
  trace::enableCounters(true);
  const std::string a = renderBenchmark(g);
  const std::string b = renderBenchmark(g);
  trace::enableCounters(false);
  EXPECT_EQ(a, b);
}

TEST(DifferentialGolden, BenchmarksMatchCommittedSchedules) {
  const bool update = std::getenv("MFRAME_UPDATE_GOLDEN") != nullptr;
  trace::enableCounters(true);
  for (const dfg::Dfg& g : suite()) {
    const std::string text = renderBenchmark(g);
    const std::string path = goldenPath(g.name());
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << path;
      out << text;
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (regenerate with MFRAME_UPDATE_GOLDEN=1)";
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(text, ss.str()) << g.name();
  }
  trace::enableCounters(false);
}

}  // namespace
}  // namespace mframe
