#include "core/mfs.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace mframe::core {
namespace {

using dfg::FuType;

MfsResult timeRun(const dfg::Dfg& g, int cs) {
  MfsOptions o;
  o.constraints.timeSteps = cs;
  return runMfs(g, o);
}

int fu(const MfsResult& r, FuType t) {
  auto it = r.fuCount.find(t);
  return it == r.fuCount.end() ? 0 : it->second;
}

TEST(Mfs, DiffeqAtFourStepsNeedsTwoMultipliers) {
  const auto r = timeRun(workloads::diffeq(), 4);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(fu(r, FuType::Multiplier), 2);  // the classic HAL result
  EXPECT_EQ(fu(r, FuType::Adder), 1);
  EXPECT_EQ(fu(r, FuType::Subtractor), 1);
  EXPECT_EQ(fu(r, FuType::Comparator), 1);
}

TEST(Mfs, DiffeqAtEightStepsNeedsOneMultiplier) {
  const auto r = timeRun(workloads::diffeq(), 8);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(fu(r, FuType::Multiplier), 1);
}

TEST(Mfs, TsengAdderCountDropsWithMoreTime) {
  const auto r4 = timeRun(workloads::tseng(), 4);
  const auto r5 = timeRun(workloads::tseng(), 5);
  ASSERT_TRUE(r4.feasible) << r4.error;
  ASSERT_TRUE(r5.feasible) << r5.error;
  EXPECT_EQ(fu(r4, FuType::Adder), 2);
  EXPECT_EQ(fu(r5, FuType::Adder), 1);
}

TEST(Mfs, SchedulesVerifyCleanAcrossTheSuite) {
  for (const auto& bc : workloads::paperSuite()) {
    for (int cs : bc.timeSweep) {
      MfsOptions o;
      o.constraints = bc.constraints;
      o.constraints.timeSteps = cs;
      const auto r = runMfs(bc.graph, o);
      ASSERT_TRUE(r.feasible) << bc.id << " T=" << cs << ": " << r.error;
      EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty())
          << bc.id << " T=" << cs;
    }
  }
}

TEST(Mfs, RejectsConstraintBelowCriticalPath) {
  const auto r = timeRun(test::addChain(5), 4);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.error.find("critical path"), std::string::npos);
}

TEST(Mfs, RejectsMissingTimeConstraint) {
  MfsOptions o;  // timeSteps = 0 in time mode
  const auto r = runMfs(test::addChain(2), o);
  EXPECT_FALSE(r.feasible);
}

TEST(Mfs, EmptyGraphIsTriviallyFeasible) {
  dfg::Builder b("empty");
  b.input("x");
  const auto g = std::move(b).build();
  MfsOptions o;
  o.constraints.timeSteps = 1;
  const auto r = runMfs(g, o);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.steps, 0);
}

TEST(Mfs, HonorsUserResourceBoundInTimeMode) {
  // 4 independent adds, 2 steps, limit 2 adders: tight but feasible.
  MfsOptions o;
  o.constraints.timeSteps = 2;
  o.constraints.fuLimit[FuType::Adder] = 2;
  const auto r = runMfs(test::addParallel(4), o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_LE(fu(r, FuType::Adder), 2);
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(Mfs, InfeasibleUnderHardResourceBound) {
  MfsOptions o;
  o.constraints.timeSteps = 1;
  o.constraints.fuLimit[FuType::Adder] = 1;
  const auto r = runMfs(test::addParallel(3), o);
  EXPECT_FALSE(r.feasible);
}

TEST(Mfs, ResourceModeMinimizesStepsUnderLimits) {
  // 6 independent adds with 2 adders: exactly 3 steps.
  MfsOptions o;
  o.mode = MfsLiapunov::Mode::ResourceConstrained;
  o.constraints.fuLimit[FuType::Adder] = 2;
  const auto r = runMfs(test::addParallel(6), o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.steps, 3);
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(Mfs, ResourceModeReachesCriticalPathWithAmpleUnits) {
  MfsOptions o;
  o.mode = MfsLiapunov::Mode::ResourceConstrained;
  o.constraints.fuLimit[FuType::Multiplier] = 2;
  o.constraints.fuLimit[FuType::Adder] = 1;
  o.constraints.fuLimit[FuType::Subtractor] = 1;
  o.constraints.fuLimit[FuType::Comparator] = 1;
  const auto r = runMfs(workloads::diffeq(), o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_EQ(r.steps, 4);  // 2 multipliers suffice for the 4-step schedule
}

TEST(Mfs, ResourceModeStretchesWhenUnitsScarce) {
  MfsOptions o;
  o.mode = MfsLiapunov::Mode::ResourceConstrained;
  o.constraints.fuLimit[FuType::Multiplier] = 1;
  o.constraints.fuLimit[FuType::Adder] = 1;
  o.constraints.fuLimit[FuType::Subtractor] = 1;
  o.constraints.fuLimit[FuType::Comparator] = 1;
  const auto r = runMfs(workloads::diffeq(), o);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_GE(r.steps, 6);  // six multiplications serialized on one unit
  EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
}

TEST(Mfs, LiapunovTraceIsMonotoneDecreasing) {
  const auto r = timeRun(workloads::diffeq(), 5);
  ASSERT_TRUE(r.feasible);
  ASSERT_GE(r.liapunovTrace.size(), 2u);
  for (std::size_t i = 1; i < r.liapunovTrace.size(); ++i)
    EXPECT_LE(r.liapunovTrace[i], r.liapunovTrace[i - 1]);
  EXPECT_LT(r.liapunovTrace.back(), r.liapunovTrace.front());
}

TEST(Mfs, TraceDisabledWhenRequested) {
  MfsOptions o;
  o.constraints.timeSteps = 4;
  o.traceLiapunov = false;
  const auto r = runMfs(workloads::diffeq(), o);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.liapunovTrace.empty());
}

TEST(Mfs, BalancedScheduleMatchesCeilBound) {
  // n independent same-type ops in cs steps can always reach ceil(n/cs).
  for (int n : {4, 6, 9}) {
    for (int cs : {2, 3}) {
      const auto r = timeRun(test::addParallel(n), cs);
      ASSERT_TRUE(r.feasible);
      EXPECT_EQ(fu(r, FuType::Adder), (n + cs - 1) / cs) << n << "/" << cs;
    }
  }
}

TEST(Mfs, InvalidGraphRejected) {
  dfg::Dfg g("bad");
  dfg::Node n;
  n.kind = dfg::OpKind::Add;
  n.name = "a";
  g.addNode(n);  // missing inputs
  MfsOptions o;
  o.constraints.timeSteps = 2;
  const auto r = runMfs(g, o);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.error.find("invalid DFG"), std::string::npos);
}

TEST(Mfs, TopoOrderRejectsIncompletePriorityList) {
  // A priority list whose op waits on a predecessor missing from the list
  // can never make progress. This used to be a release-mode-silent
  // assert(progress); now it surfaces a structured error naming the op.
  const dfg::Dfg g = test::addChain(2);  // c1 -> c2
  std::string err;
  const auto order = topoConsistentOrder(g, {g.findByName("c2")}, &err);
  EXPECT_FALSE(order.has_value());
  EXPECT_NE(err.find("c2"), std::string::npos) << err;
  EXPECT_NE(err.find("inconsistent priority order"), std::string::npos) << err;
}

TEST(Mfs, TopoOrderAcceptsAnyCompletePermutation) {
  // Sanity for the happy path of the same routine: a reversed-but-complete
  // list is repaired into a valid topological order.
  const dfg::Dfg g = test::addChain(3);
  const std::vector<dfg::NodeId> rev = {
      g.findByName("c3"), g.findByName("c2"), g.findByName("c1")};
  std::string err;
  const auto order = topoConsistentOrder(g, rev, &err);
  ASSERT_TRUE(order.has_value()) << err;
  ASSERT_EQ(order->size(), 3u);
  EXPECT_EQ((*order)[0], g.findByName("c1"));
  EXPECT_EQ((*order)[1], g.findByName("c2"));
  EXPECT_EQ((*order)[2], g.findByName("c3"));
}

TEST(Mfs, PriorityAblationStillProducesValidSchedules) {
  for (auto rule : {sched::PriorityRule::Mobility,
                    sched::PriorityRule::MobilityNoReverse,
                    sched::PriorityRule::InsertionOrder}) {
    MfsOptions o;
    o.constraints.timeSteps = 17;
    o.priorityRule = rule;
    const auto r = runMfs(workloads::ewfLike(), o);
    ASSERT_TRUE(r.feasible) << r.error;
    EXPECT_TRUE(sched::verifySchedule(r.schedule, o.constraints).empty());
  }
}

}  // namespace
}  // namespace mframe::core
