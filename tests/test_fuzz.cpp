// Robustness sweeps: random garbage and random mutations of valid sources
// through every text front-end. The contract is "throw a typed error or
// succeed" — never crash, hang, or corrupt memory.
#include <gtest/gtest.h>

#include <random>

#include "celllib/library_io.h"
#include "dfg/builder.h"
#include "dfg/parser.h"
#include "lang/lower.h"
#include "lang/parser.h"

namespace mframe {
namespace {

std::string randomText(std::mt19937& rng, std::size_t len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnop 0123456789 ;,=()[]{}+-*/&|^!<>#\n\t";
  std::string s;
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(kAlphabet) - 2);
  for (std::size_t i = 0; i < len; ++i) s += kAlphabet[pick(rng)];
  return s;
}

std::string mutate(std::string s, std::mt19937& rng, int edits) {
  static constexpr char kNoise[] = ";=*(){}#\n x0";
  std::uniform_int_distribution<std::size_t> noise(0, sizeof(kNoise) - 2);
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos =
        std::uniform_int_distribution<std::size_t>(0, s.size() - 1)(rng);
    switch (rng() % 3) {
      case 0: s[pos] = kNoise[noise(rng)]; break;
      case 1: s.erase(pos, 1); break;
      default: s.insert(pos, 1, kNoise[noise(rng)]); break;
    }
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuzzSeeds, DfgParserNeverCrashes) {
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::string text = "dfg f\n" + randomText(rng, 120);
    try {
      const dfg::Dfg g = dfg::parse(text);
      EXPECT_FALSE(g.validate().has_value());  // success implies well-formed
    } catch (const dfg::DfgError&) {
      // expected for garbage
    }
  }
}

TEST_P(FuzzSeeds, LangParserNeverCrashes) {
  std::mt19937 rng(GetParam() + 100);
  for (int i = 0; i < 50; ++i) {
    const std::string text = "design f;\n" + randomText(rng, 120);
    try {
      (void)lang::compile(text);
    } catch (const lang::LangError&) {
    }
  }
}

TEST_P(FuzzSeeds, LibraryParserNeverCrashes) {
  std::mt19937 rng(GetParam() + 200);
  for (int i = 0; i < 50; ++i) {
    const std::string text = "library f\n" + randomText(rng, 100);
    try {
      (void)celllib::parseLibrary(text);
    } catch (const celllib::LibraryError&) {
    }
  }
}

TEST_P(FuzzSeeds, MutatedValidDfgSourceParsesOrThrows) {
  constexpr const char* kValid =
      "dfg m\ninput a\ninput b\nop add s a b\nop mul p s b cycles=2\n"
      "output y p\n";
  std::mt19937 rng(GetParam() + 300);
  for (int i = 0; i < 60; ++i) {
    const std::string text = mutate(kValid, rng, 1 + static_cast<int>(rng() % 6));
    try {
      const dfg::Dfg g = dfg::parse(text);
      EXPECT_FALSE(g.validate().has_value());
    } catch (const dfg::DfgError&) {
    }
  }
}

TEST_P(FuzzSeeds, MutatedValidLangSourceCompilesOrThrows) {
  constexpr const char* kValid =
      "design m;\ninput a, b;\noutput y;\ns = a + b;\n"
      "if (s > 3) { t = s * 2; }\ny = s - 1;\n";
  std::mt19937 rng(GetParam() + 400);
  for (int i = 0; i < 60; ++i) {
    const std::string text = mutate(kValid, rng, 1 + static_cast<int>(rng() % 6));
    try {
      (void)lang::compile(text);
    } catch (const lang::LangError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint32_t>(1, 9));

}  // namespace
}  // namespace mframe
