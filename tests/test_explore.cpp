#include "explore/explore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "celllib/ncr_like.h"
#include "explore/thread_pool.h"
#include "workloads/benchmarks.h"

namespace mframe::explore {
namespace {

// A trimmed sweep keeps the tests quick while still crossing every axis
// kind: 4 step budgets x 1 weight x 1 rule x 2 interconnects x 2 styles.
SweepSpec smallSpec() {
  SweepSpec s = SweepSpec::defaults();
  s.weights = {core::MfsaWeights{}};
  s.priorityRules = {sched::PriorityRule::Mobility};
  return s;
}

TEST(Explore, DeterministicAcrossJobCounts) {
  // The headline guarantee: the JSON report — frontier, candidate order,
  // every cost digit — is bit-identical no matter how many workers ran.
  const celllib::CellLibrary lib = celllib::ncrLike();
  for (const dfg::Dfg& g : {workloads::diffeq(), workloads::tseng()}) {
    const SweepSpec spec = smallSpec();
    const std::string one = toJson(explore(g, lib, spec, 1));
    const std::string three = toJson(explore(g, lib, spec, 3));
    const std::string eight = toJson(explore(g, lib, spec, 8));
    EXPECT_EQ(one, three) << g.name();
    EXPECT_EQ(one, eight) << g.name();
  }
}

TEST(Explore, FrontierIsParetoMinimalAndSorted) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  const auto r = explore(workloads::diffeq(), lib, smallSpec(), 2);
  ASSERT_GT(r.feasibleCount, 0);
  ASSERT_FALSE(r.frontier.empty());

  // Sorted by steps ascending, total strictly decreasing, all feasible.
  for (std::size_t i = 0; i < r.frontier.size(); ++i) {
    const Candidate& c = r.candidates[static_cast<std::size_t>(r.frontier[i])];
    ASSERT_TRUE(c.feasible);
    if (i > 0) {
      const Candidate& p =
          r.candidates[static_cast<std::size_t>(r.frontier[i - 1])];
      EXPECT_LT(p.steps, c.steps);
      EXPECT_GT(p.cost.total, c.cost.total);
    }
  }
  // Every feasible candidate is dominated by (or is) a frontier point.
  for (const Candidate& c : r.candidates) {
    if (!c.feasible) continue;
    bool covered = false;
    for (int fi : r.frontier) {
      const Candidate& f = r.candidates[static_cast<std::size_t>(fi)];
      if (f.steps <= c.steps && f.cost.total <= c.cost.total) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "candidate " << c.index << " not dominated";
  }
}

TEST(Explore, EnumerationOrderIsStableAndComplete) {
  const SweepSpec spec = SweepSpec::defaults();
  const auto a = enumerateConfigs(spec, 4);
  const auto b = enumerateConfigs(spec, 4);
  // defaults(): empty steps -> critical+0..+3, 3 weights, 2 rules,
  // 2 interconnects, 2 styles.
  ASSERT_EQ(a.size(), 4u * 3u * 2u * 2u * 2u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, static_cast<int>(i));
    EXPECT_EQ(a[i].steps, b[i].steps);
    EXPECT_EQ(a[i].priorityRule, b[i].priorityRule);
    EXPECT_EQ(a[i].interconnect, b[i].interconnect);
    EXPECT_EQ(a[i].style, b[i].style);
  }
  // Steps is the outermost axis: the first quarter all carry critical+0.
  for (std::size_t i = 0; i < a.size() / 4; ++i) EXPECT_EQ(a[i].steps, 4);
  EXPECT_EQ(a.back().steps, 7);
}

TEST(Explore, InfeasibleConfigsAreReportedNotFatal) {
  // One control step is below diffeq's critical path: every candidate must
  // come back infeasible with an error string, and the frontier is empty.
  const celllib::CellLibrary lib = celllib::ncrLike();
  SweepSpec spec = smallSpec();
  spec.steps = {1};
  const auto r = explore(workloads::diffeq(), lib, spec, 2);
  EXPECT_EQ(r.feasibleCount, 0);
  EXPECT_TRUE(r.frontier.empty());
  ASSERT_FALSE(r.candidates.empty());
  for (const Candidate& c : r.candidates) {
    EXPECT_FALSE(c.feasible);
    EXPECT_FALSE(c.error.empty());
  }
}

TEST(Explore, ProbesCriticalPathAndFillsStepAxis) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  const auto r = explore(workloads::diffeq(), lib, smallSpec(), 1);
  EXPECT_EQ(r.criticalSteps, 4);
  ASSERT_FALSE(r.candidates.empty());
  EXPECT_EQ(r.candidates.front().steps, 4);
  EXPECT_EQ(r.candidates.back().steps, 7);
}

TEST(Explore, JsonCarriesDesignFrontierAndNoTimings) {
  const celllib::CellLibrary lib = celllib::ncrLike();
  const auto r = explore(workloads::tseng(), lib, smallSpec(), 2);
  const std::string j = toJson(r);
  EXPECT_EQ(j.front(), '{');
  EXPECT_NE(j.find("\"design\""), std::string::npos);
  EXPECT_NE(j.find(r.design), std::string::npos);
  EXPECT_NE(j.find("\"frontier\""), std::string::npos);
  EXPECT_NE(j.find("\"candidates\""), std::string::npos);
  // Determinism would break the moment host/time data leaks in.
  EXPECT_EQ(j.find("\"date\""), std::string::npos);
  EXPECT_EQ(j.find("\"seconds\""), std::string::npos);
  EXPECT_EQ(j.find("\"real_time\""), std::string::npos);
  EXPECT_EQ(j.find("\"cpu_time\""), std::string::npos);
}

TEST(Explore, ParallelForShortCircuitsAfterFirstThrow) {
  // A failing item must stop dispatch: workers check the shared stop flag
  // before claiming, so a 1000-item loop dies long before the end once
  // item 0 throws. Items already in flight still finish, so the executed
  // count is merely far below n, not exactly zero.
  std::atomic<int> executed{0};
  const int n = 1000;
  try {
    parallelFor(n, 4, [&](int i) {
      if (i == 0) throw std::runtime_error("boom");
      ++executed;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
    FAIL() << "expected the item-0 exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_LT(executed.load(), n / 2);
}

TEST(Explore, ParallelForSerialThrowStopsImmediately) {
  // The jobs <= 1 degenerate path is a plain loop: the exception propagates
  // from the failing item and nothing after it runs.
  std::atomic<int> executed{0};
  EXPECT_THROW(parallelFor(100, 1,
                           [&](int i) {
                             if (i == 3) throw std::runtime_error("serial");
                             ++executed;
                           }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 3);
}

TEST(Explore, ParallelForCompletesAllItemsWithoutErrors) {
  std::vector<int> out(257, 0);
  parallelFor(static_cast<int>(out.size()), 8,
              [&](int i) { out[static_cast<std::size_t>(i)] = i + 1; });
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<int>(i) + 1);
}

}  // namespace
}  // namespace mframe::explore
