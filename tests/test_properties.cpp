// Property-based sweeps: random DFGs x random constraints through the whole
// stack, asserting verifier cleanliness and the Liapunov invariants the
// paper's theorem demands.
#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "rtl/controller.h"
#include "rtl/verify.h"
#include "sched/verify.h"
#include "sim/dfg_eval.h"
#include "sim/rtl_sim.h"
#include "workloads/random_dfg.h"

namespace mframe {
namespace {

using core::MfsLiapunov;

struct PropertyCase {
  std::uint32_t seed;
  int numOps;
  int slack;        ///< steps beyond the critical path
  int mulPercent;
  int twoCyclePercent;
  int branchPercent;
};

class MfsProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(MfsProperty, TimeConstrainedScheduleIsValidAndMonotone) {
  const auto& pc = GetParam();
  workloads::RandomDfgOptions o;
  o.seed = pc.seed;
  o.numOps = pc.numOps;
  o.mulPercent = pc.mulPercent;
  o.twoCyclePercent = pc.twoCyclePercent;
  o.branchPercent = pc.branchPercent;
  const dfg::Dfg g = workloads::randomDfg(o);

  sched::Constraints probe;
  const auto tf = computeTimeFrames(g, probe);
  ASSERT_TRUE(tf.has_value());

  core::MfsOptions mo;
  mo.constraints.timeSteps = tf->criticalSteps() + pc.slack;
  const auto r = core::runMfs(g, mo);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, mo.constraints).empty());

  ASSERT_FALSE(r.liapunovTrace.empty());
  for (std::size_t i = 1; i < r.liapunovTrace.size(); ++i)
    EXPECT_LE(r.liapunovTrace[i], r.liapunovTrace[i - 1]);
}

TEST_P(MfsProperty, ResourceModeNeverBeatsCriticalPathAndStaysValid) {
  const auto& pc = GetParam();
  workloads::RandomDfgOptions o;
  o.seed = pc.seed + 1000;
  o.numOps = pc.numOps;
  o.mulPercent = pc.mulPercent;
  o.twoCyclePercent = pc.twoCyclePercent;
  const dfg::Dfg g = workloads::randomDfg(o);

  core::MfsOptions mo;
  mo.mode = MfsLiapunov::Mode::ResourceConstrained;
  for (std::size_t t = 0; t < dfg::kNumFuTypes; ++t)
    mo.constraints.fuLimit[static_cast<dfg::FuType>(t)] = 2;
  const auto r = core::runMfs(g, mo);
  ASSERT_TRUE(r.feasible) << r.error;

  sched::Constraints probe;
  const auto tf = computeTimeFrames(g, probe);
  EXPECT_GE(r.steps, tf->criticalSteps());
  sched::Constraints vc = mo.constraints;
  vc.timeSteps = r.steps;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, vc).empty());
}

TEST_P(MfsProperty, MfsaDatapathVerifiesBothStyles) {
  const auto& pc = GetParam();
  workloads::RandomDfgOptions o;
  o.seed = pc.seed + 2000;
  o.numOps = std::min(pc.numOps, 24);  // MFSA sweep kept modest
  o.mulPercent = pc.mulPercent;
  o.twoCyclePercent = pc.twoCyclePercent;
  o.branchPercent = pc.branchPercent;
  const dfg::Dfg g = workloads::randomDfg(o);

  static const celllib::CellLibrary lib = celllib::ncrLike();
  sched::Constraints probe;
  const auto tf = computeTimeFrames(g, probe);
  ASSERT_TRUE(tf.has_value());

  for (auto style :
       {rtl::DesignStyle::Unrestricted, rtl::DesignStyle::NoSelfLoop}) {
    core::MfsaOptions ao;
    ao.constraints.timeSteps = tf->criticalSteps() + std::max(pc.slack, 1);
    ao.style = style;
    const auto r = core::runMfsa(g, lib, ao);
    ASSERT_TRUE(r.feasible) << r.error;
    EXPECT_TRUE(rtl::verifyDatapath(r.datapath, ao.constraints, style).empty());
    for (std::size_t i = 1; i < r.liapunovTrace.size(); ++i)
      EXPECT_LE(r.liapunovTrace[i], r.liapunovTrace[i - 1]);
  }
}

TEST_P(MfsProperty, SynthesizedRtlIsFunctionallyEquivalent) {
  // The strongest end-to-end property: for random graphs and random input
  // vectors, simulating the synthesized datapath + controller produces
  // exactly the values the behavioral DFG computes.
  const auto& pc = GetParam();
  workloads::RandomDfgOptions o;
  o.seed = pc.seed + 4000;
  o.numOps = std::min(pc.numOps, 32);
  o.mulPercent = pc.mulPercent;
  o.twoCyclePercent = pc.twoCyclePercent;
  o.branchPercent = pc.branchPercent;
  const dfg::Dfg g = workloads::randomDfg(o);

  static const celllib::CellLibrary lib = celllib::ncrLike();
  sched::Constraints probe;
  const auto tf = computeTimeFrames(g, probe);
  core::MfsaOptions ao;
  ao.constraints.timeSteps = tf->criticalSteps() + std::max(pc.slack, 1);
  const auto r = core::runMfsa(g, lib, ao);
  ASSERT_TRUE(r.feasible) << r.error;
  const auto fsm = rtl::buildController(r.datapath);

  for (sim::Word base : {sim::Word{0}, sim::Word{7}, sim::Word{40000}}) {
    std::map<std::string, sim::Word> in;
    sim::Word v = base;
    for (const dfg::Node& n : g.nodes())
      if (n.kind == dfg::OpKind::Input) in[n.name] = (v = v * 31 + 17);
    const auto ref = sim::evalDfg(g, in);
    ASSERT_TRUE(ref.ok) << ref.error;
    const auto rtlOut = sim::simulateRtl(r.datapath, fsm, in);
    ASSERT_TRUE(rtlOut.ok) << rtlOut.error;
    for (const auto& [name, value] : ref.outputs)
      EXPECT_EQ(rtlOut.outputs.at(name), value) << name << " base " << base;
  }
}

TEST_P(MfsProperty, FunctionalFoldingStaysValid) {
  const auto& pc = GetParam();
  workloads::RandomDfgOptions o;
  o.seed = pc.seed + 3000;
  o.numOps = pc.numOps;
  o.mulPercent = 15;
  o.twoCyclePercent = 0;  // folding with unit ops
  const dfg::Dfg g = workloads::randomDfg(o);

  sched::Constraints probe;
  const auto tf = computeTimeFrames(g, probe);
  const int cs = tf->criticalSteps() + 2;
  const int latency = std::max(2, cs / 2);

  core::MfsOptions mo;
  mo.constraints.timeSteps = cs;
  mo.constraints.latency = latency;
  const auto r = core::runMfs(g, mo);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, mo.constraints).empty());
}

TEST_P(MfsProperty, ChainedSchedulesStayValidAndEquivalent) {
  // Random delays + chaining through MFS, then through MFSA with RTL
  // simulation against the reference — the chaining machinery end to end.
  const auto& pc = GetParam();
  workloads::RandomDfgOptions o;
  o.seed = pc.seed + 5000;
  o.numOps = std::min(pc.numOps, 28);
  o.mulPercent = 10;       // keep most delays chainable under 100 ns
  o.twoCyclePercent = 0;
  o.randomDelays = true;
  const dfg::Dfg g = workloads::randomDfg(o);

  sched::Constraints c;
  c.allowChaining = true;
  c.clockNs = 100.0;
  const auto tf = computeTimeFrames(g, c);
  ASSERT_TRUE(tf.has_value());
  c.timeSteps = tf->criticalSteps() + pc.slack;

  core::MfsOptions mo;
  mo.constraints = c;
  const auto r = core::runMfs(g, mo);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(sched::verifySchedule(r.schedule, c).empty());

  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions ao;
  ao.constraints = c;
  const auto ra = core::runMfsa(g, lib, ao);
  ASSERT_TRUE(ra.feasible) << ra.error;
  const auto fsm = rtl::buildController(ra.datapath);
  std::map<std::string, sim::Word> in;
  sim::Word v = 5;
  for (const dfg::Node& n : g.nodes())
    if (n.kind == dfg::OpKind::Input) in[n.name] = (v = v * 13 + 7);
  const auto ref = sim::evalDfg(g, in);
  const auto rtlOut = sim::simulateRtl(ra.datapath, fsm, in);
  ASSERT_TRUE(ref.ok && rtlOut.ok) << rtlOut.error;
  for (const auto& [name, value] : ref.outputs)
    EXPECT_EQ(rtlOut.outputs.at(name), value) << name;
}

std::vector<PropertyCase> makeCases() {
  std::vector<PropertyCase> v;
  std::uint32_t seed = 1;
  for (int numOps : {12, 28, 48}) {
    for (int slack : {0, 2, 5}) {
      for (int branch : {0, 25}) {
        v.push_back({seed++, numOps, slack, /*mulPercent=*/25,
                     /*twoCyclePercent=*/20, branch});
      }
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MfsProperty, ::testing::ValuesIn(makeCases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& i) {
                           return "ops" + std::to_string(i.param.numOps) +
                                  "_slack" + std::to_string(i.param.slack) +
                                  "_br" + std::to_string(i.param.branchPercent) +
                                  "_s" + std::to_string(i.param.seed);
                         });

}  // namespace
}  // namespace mframe
