#include "workloads/benchmarks.h"

#include <gtest/gtest.h>

#include "sched/timeframes.h"
#include "workloads/random_dfg.h"

namespace mframe::workloads {
namespace {

using dfg::FuType;
using dfg::OpKind;

std::map<OpKind, int> opMix(const dfg::Dfg& g) {
  std::map<OpKind, int> m;
  for (dfg::NodeId id : g.operations()) ++m[g.node(id).kind];
  return m;
}

int criticalPath(const dfg::Dfg& g) {
  sched::Constraints c;
  return sched::computeTimeFrames(g, c)->criticalSteps();
}

TEST(Workloads, AllBenchmarksValidate) {
  for (const auto& bc : paperSuite())
    EXPECT_FALSE(bc.graph.validate().has_value()) << bc.id;
}

TEST(Workloads, TsengMixAndCriticalPath) {
  const dfg::Dfg g = tseng();
  const auto m = opMix(g);
  EXPECT_EQ(m.at(OpKind::Add), 3);
  EXPECT_EQ(m.at(OpKind::Mul), 1);
  EXPECT_EQ(m.at(OpKind::Sub), 1);
  EXPECT_EQ(m.at(OpKind::Eq), 1);
  EXPECT_EQ(criticalPath(g), 4);
}

TEST(Workloads, ChainedNeedsChainingToHitFourSteps) {
  const dfg::Dfg g = chained();
  EXPECT_EQ(criticalPath(g), 6);  // without chaining
  sched::Constraints c;
  c.allowChaining = true;
  c.clockNs = 100.0;
  EXPECT_LE(sched::computeTimeFrames(g, c)->criticalSteps(), 4);
}

TEST(Workloads, DiffeqIsTheClassicElevenOpGraph) {
  const dfg::Dfg g = diffeq();
  const auto m = opMix(g);
  EXPECT_EQ(m.at(OpKind::Mul), 6);
  EXPECT_EQ(m.at(OpKind::Add), 2);
  EXPECT_EQ(m.at(OpKind::Sub), 2);
  EXPECT_EQ(m.at(OpKind::Lt), 1);
  EXPECT_EQ(g.operations().size(), 11u);
  EXPECT_EQ(criticalPath(g), 4);
}

TEST(Workloads, DiffeqTwoCycleVariantStretches) {
  // Critical chain m1/m2 -> m4 -> s1 -> u1: 2 + 2 + 1 + 1 = 6 steps.
  EXPECT_EQ(criticalPath(diffeq(true)), 6);
}

TEST(Workloads, Fir8MixAndDepth) {
  const dfg::Dfg g = fir8();
  const auto m = opMix(g);
  EXPECT_EQ(m.at(OpKind::Mul), 8);
  EXPECT_EQ(m.at(OpKind::Add), 7);
  EXPECT_EQ(criticalPath(g), 4);  // mul + 3 tree levels
}

TEST(Workloads, ArLatticeClassicMix) {
  const dfg::Dfg g = arLattice();
  const auto m = opMix(g);
  EXPECT_EQ(m.at(OpKind::Mul), 16);
  EXPECT_EQ(m.at(OpKind::Add), 12);
  for (dfg::NodeId id : g.operations()) {
    if (g.node(id).kind == OpKind::Mul) {
      EXPECT_EQ(g.node(id).cycles, 2);
    }
  }
  EXPECT_EQ(criticalPath(g), 13);
}

TEST(Workloads, EwfLikeClassicMixAndSeventeenSteps) {
  const dfg::Dfg g = ewfLike();
  const auto m = opMix(g);
  EXPECT_EQ(m.at(OpKind::Add), 26);
  EXPECT_EQ(m.at(OpKind::Mul), 8);
  EXPECT_EQ(g.operations().size(), 34u);
  EXPECT_EQ(criticalPath(g), 17);  // the classic EWF sweep starts here
}

TEST(Workloads, PaperSuiteHasSixCasesWithSweeps) {
  const auto suite = paperSuite();
  ASSERT_EQ(suite.size(), 6u);
  for (const auto& bc : suite) {
    EXPECT_FALSE(bc.timeSweep.empty()) << bc.id;
    // Sweeps are feasible: first point >= critical path under the case's
    // constraints.
    sched::Constraints c = bc.constraints;
    c.timeSteps = 0;
    const auto tf = sched::computeTimeFrames(bc.graph, c);
    ASSERT_TRUE(tf.has_value()) << bc.id;
    EXPECT_GE(bc.timeSweep.front(), tf->criticalSteps()) << bc.id;
  }
}

TEST(Workloads, FdctLikeMixAndDepth) {
  const dfg::Dfg g = fdctLike();
  const auto m = opMix(g);
  EXPECT_EQ(m.at(OpKind::Mul), 16);
  EXPECT_EQ(m.at(OpKind::Add) + m.at(OpKind::Sub), 28);
  EXPECT_EQ(criticalPath(g), 6);
  EXPECT_EQ(g.outputs().size(), 8u);
}

TEST(Workloads, IirBiquadsMixAndSerialDepth) {
  const dfg::Dfg g = iirBiquads();
  const auto m = opMix(g);
  EXPECT_EQ(m.at(OpKind::Mul), 10);
  EXPECT_EQ(m.at(OpKind::Add) + m.at(OpKind::Sub), 8);
  // Section 1: fb -> t -> w -> ff0 -> p -> y (6 steps); section 2 chains
  // t..y behind section 1's output (5 more steps).
  EXPECT_EQ(criticalPath(g), 11);
}

TEST(RandomDfg, DeterministicPerSeed) {
  RandomDfgOptions o;
  o.seed = 7;
  o.numOps = 25;
  const dfg::Dfg a = randomDfg(o);
  const dfg::Dfg b = randomDfg(o);
  ASSERT_EQ(a.size(), b.size());
  for (dfg::NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).kind, b.node(i).kind);
    EXPECT_EQ(a.node(i).inputs, b.node(i).inputs);
  }
}

TEST(RandomDfg, DifferentSeedsDiffer) {
  RandomDfgOptions a;
  a.seed = 1;
  a.numOps = 25;
  RandomDfgOptions b = a;
  b.seed = 2;
  const dfg::Dfg ga = randomDfg(a);
  const dfg::Dfg gb = randomDfg(b);
  bool differ = ga.size() != gb.size();
  for (dfg::NodeId i = 0; !differ && i < ga.size(); ++i)
    differ = ga.node(i).kind != gb.node(i).kind ||
             ga.node(i).inputs != gb.node(i).inputs;
  EXPECT_TRUE(differ);
}

TEST(RandomDfg, RequestedOpCountAndValidity) {
  for (std::uint32_t seed : {1u, 5u, 9u}) {
    RandomDfgOptions o;
    o.seed = seed;
    o.numOps = 40;
    o.twoCyclePercent = 40;
    o.branchPercent = 30;
    const dfg::Dfg g = randomDfg(o);
    EXPECT_FALSE(g.validate().has_value());
    EXPECT_EQ(g.operations().size(), 40u);
  }
}

TEST(RandomDfg, BranchPercentProducesExclusivePairs) {
  RandomDfgOptions o;
  o.seed = 3;
  o.numOps = 60;
  o.branchPercent = 60;
  const dfg::Dfg g = randomDfg(o);
  bool anyExclusive = false;
  const auto ops = g.operations();
  for (std::size_t i = 0; i < ops.size() && !anyExclusive; ++i)
    for (std::size_t j = i + 1; j < ops.size(); ++j)
      if (g.mutuallyExclusive(ops[i], ops[j])) {
        anyExclusive = true;
        break;
      }
  EXPECT_TRUE(anyExclusive);
}

}  // namespace
}  // namespace mframe::workloads
