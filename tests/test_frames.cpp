#include "core/frames.h"

#include <gtest/gtest.h>

#include "dfg/builder.h"
#include "helpers.h"
#include "sched/timeframes.h"

namespace mframe::core {
namespace {

using dfg::NodeId;

struct Fixture {
  dfg::Dfg g = test::smallDiamond();
  sched::Constraints c;
  std::optional<sched::TimeFrames> tf;
  Fixture(int cs = 4) {
    c.timeSteps = cs;
    tf = computeTimeFrames(g, c);
  }
};

TEST(Frames, PrimaryFrameIsAsapAlapTimesMaxCols) {
  Fixture fx;
  FrameCalculator fc(fx.g, fx.c, *fx.tf);
  sched::Schedule s(fx.g);
  ColumnOccupancy occ(fx.g, fx.c);
  const NodeId y = fx.g.findByName("y");
  const auto f = fc.compute(s, occ, y, /*currentCols=*/2, /*maxCols=*/3);
  EXPECT_EQ(f.pfStepLo, fx.tf->asap(y));
  EXPECT_EQ(f.pfStepHi, fx.tf->alap(y));
  EXPECT_EQ(f.pfColLo, 1);
  EXPECT_EQ(f.pfColHi, 3);
  EXPECT_EQ(f.rfColLo, 3);  // columns >= current+1 are redundant
}

TEST(Frames, MoveFrameExcludesRedundantColumns) {
  Fixture fx;
  FrameCalculator fc(fx.g, fx.c, *fx.tf);
  sched::Schedule s(fx.g);
  ColumnOccupancy occ(fx.g, fx.c);
  const NodeId sum = fx.g.findByName("s");
  const auto f = fc.compute(s, occ, sum, /*currentCols=*/1, /*maxCols=*/4);
  for (const auto& cell : f.moveFrame) EXPECT_EQ(cell.column, 1);
  EXPECT_FALSE(f.moveFrame.empty());
}

TEST(Frames, ForbiddenFrameBlocksPredecessorSteps) {
  Fixture fx;
  FrameCalculator fc(fx.g, fx.c, *fx.tf);
  sched::Schedule s(fx.g);
  ColumnOccupancy occ(fx.g, fx.c);
  const NodeId sum = fx.g.findByName("s");
  const NodeId diff = fx.g.findByName("t");
  const NodeId y = fx.g.findByName("y");
  // Place the predecessors late: steps 1 and 2.
  s.place(sum, 2, 1);
  fc.recordPlacement(s, sum, 2);
  s.place(diff, 1, 1);
  fc.recordPlacement(s, diff, 1);
  const auto f = fc.compute(s, occ, y, 2, 2);
  EXPECT_EQ(f.ffBelowStep, 3);  // steps <= 2 are forbidden
  for (const auto& cell : f.moveFrame) EXPECT_GE(cell.step, 3);
  EXPECT_FALSE(f.moveFrame.empty());
}

TEST(Frames, MoveFrameExcludesOccupiedCells) {
  const dfg::Dfg g = test::addParallel(2);
  sched::Constraints c;
  c.timeSteps = 1;
  const auto tf = *computeTimeFrames(g, c);
  FrameCalculator fc(g, c, tf);
  sched::Schedule s(g);
  ColumnOccupancy occ(g, c);
  const auto ops = g.operations();
  occ.place(ops[0], 1, 1);
  s.place(ops[0], 1, 1);
  const auto f = fc.compute(s, occ, ops[1], 2, 2);
  ASSERT_EQ(f.moveFrame.size(), 1u);
  EXPECT_EQ(f.moveFrame[0].column, 2);
}

TEST(Frames, DepOkRejectsBusyPredecessor) {
  dfg::Builder b("mc");
  const auto x = b.input("x");
  const auto y = b.input("y");
  const auto m = b.mul(x, y, "m", 2);
  const auto a = b.add(m, x, "a");
  b.output(a, "o");
  const dfg::Dfg g = std::move(b).build();
  sched::Constraints c;
  c.timeSteps = 4;
  const auto tf = *computeTimeFrames(g, c);
  FrameCalculator fc(g, c, tf);
  sched::Schedule s(g);
  s.place(g.findByName("m"), 1, 1);  // busy through step 2
  fc.recordPlacement(s, g.findByName("m"), 1);
  EXPECT_FALSE(fc.depOk(s, g.findByName("a"), 2).ok);
  EXPECT_TRUE(fc.depOk(s, g.findByName("a"), 3).ok);
}

TEST(Frames, ChainingRelaxesTheForbiddenFrame) {
  const dfg::Dfg g = test::addChain(2);
  sched::Constraints c;
  c.timeSteps = 2;
  c.allowChaining = true;
  c.clockNs = 100.0;
  const auto tf = *computeTimeFrames(g, c);
  FrameCalculator fc(g, c, tf);
  sched::Schedule s(g);
  const NodeId c1 = g.findByName("c1");
  const NodeId c2 = g.findByName("c2");
  s.place(c1, 1, 1);
  fc.recordPlacement(s, c1, 1);
  const auto d = fc.depOk(s, c2, 1);  // same step, 40+40 <= 100
  EXPECT_TRUE(d.ok);
  EXPECT_DOUBLE_EQ(d.startOffsetNs, 40.0);
}

TEST(Frames, ChainingBudgetExhaustionForbids) {
  const dfg::Dfg g = test::addChain(3);
  sched::Constraints c;
  c.timeSteps = 3;
  c.allowChaining = true;
  c.clockNs = 100.0;
  const auto tf = *computeTimeFrames(g, c);
  FrameCalculator fc(g, c, tf);
  sched::Schedule s(g);
  s.place(g.findByName("c1"), 1, 1);
  fc.recordPlacement(s, g.findByName("c1"), 1);
  s.place(g.findByName("c2"), 1, 2);
  fc.recordPlacement(s, g.findByName("c2"), 1);
  // c3 at step 1 would need 120ns.
  EXPECT_FALSE(fc.depOk(s, g.findByName("c3"), 1).ok);
  EXPECT_TRUE(fc.depOk(s, g.findByName("c3"), 2).ok);
}

TEST(Frames, ChainOffsetsAccumulateAlongThePlacementOrder) {
  const dfg::Dfg g = test::addChain(2);
  sched::Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  c.clockNs = 100.0;
  const auto tf = *computeTimeFrames(g, c);
  FrameCalculator fc(g, c, tf);
  sched::Schedule s(g);
  s.place(g.findByName("c1"), 1, 1);
  fc.recordPlacement(s, g.findByName("c1"), 1);
  s.place(g.findByName("c2"), 1, 2);
  fc.recordPlacement(s, g.findByName("c2"), 1);
  EXPECT_DOUBLE_EQ(fc.chainOffsetOf(g.findByName("c1")), 40.0);
  EXPECT_DOUBLE_EQ(fc.chainOffsetOf(g.findByName("c2")), 80.0);
}

TEST(Frames, ResetClearsChainState) {
  const dfg::Dfg g = test::addChain(1);
  sched::Constraints c;
  c.timeSteps = 1;
  c.allowChaining = true;
  const auto tf = *computeTimeFrames(g, c);
  FrameCalculator fc(g, c, tf);
  sched::Schedule s(g);
  s.place(g.findByName("c1"), 1, 1);
  fc.recordPlacement(s, g.findByName("c1"), 1);
  fc.reset();
  EXPECT_DOUBLE_EQ(fc.chainOffsetOf(g.findByName("c1")), 0.0);
}

}  // namespace
}  // namespace mframe::core
