#include "rtl/testability.h"

#include <gtest/gtest.h>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "helpers.h"
#include "workloads/benchmarks.h"

namespace mframe::rtl {
namespace {

core::MfsaResult synth(const dfg::Dfg& g, int cs, DesignStyle style,
                       sched::Constraints base = {}) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints = base;
  o.constraints.timeSteps = cs;
  o.style = style;
  return core::runMfsa(g, lib, o);
}

TEST(Testability, Style2IsAlwaysSelfTestable) {
  for (const auto& bc : workloads::paperSuite()) {
    const auto r = synth(bc.graph, bc.timeSweep.front(), DesignStyle::NoSelfLoop,
                         bc.constraints);
    ASSERT_TRUE(r.feasible) << bc.id << ": " << r.error;
    const auto rep = analyzeTestability(r.datapath);
    EXPECT_TRUE(rep.selfTestable()) << bc.id << ": " << rep.toString();
    EXPECT_EQ(rep.selfLoopPairs, 0) << bc.id;
  }
}

TEST(Testability, Style1UsuallyHasSelfLoops) {
  // Unrestricted binding merges chains into one ALU somewhere in the suite.
  int loops = 0;
  for (const auto& bc : workloads::paperSuite()) {
    const auto r = synth(bc.graph, bc.timeSweep.front(), DesignStyle::Unrestricted,
                         bc.constraints);
    ASSERT_TRUE(r.feasible);
    loops += analyzeTestability(r.datapath).selfLoopPairs;
  }
  EXPECT_GT(loops, 0);
}

TEST(Testability, CrossAluEdgesCounted) {
  const auto r = synth(workloads::diffeq(), 4, DesignStyle::NoSelfLoop);
  ASSERT_TRUE(r.feasible);
  const auto rep = analyzeTestability(r.datapath);
  EXPECT_GT(rep.crossAluEdges, 0);  // dataflow must cross units in style 2
}

TEST(Testability, ReportStringStatesTheVerdict) {
  const auto r2 = synth(workloads::tseng(), 4, DesignStyle::NoSelfLoop);
  ASSERT_TRUE(r2.feasible);
  EXPECT_NE(analyzeTestability(r2.datapath).toString().find("self-testable"),
            std::string::npos);
}

TEST(Testability, SelfLoopRegistersSubsetOfPairs) {
  const auto r = synth(workloads::ewfLike(), 17, DesignStyle::Unrestricted);
  ASSERT_TRUE(r.feasible);
  const auto rep = analyzeTestability(r.datapath);
  EXPECT_LE(rep.selfLoopRegisters, rep.selfLoopPairs);
  EXPECT_LE(rep.selfLoopAlus, static_cast<int>(r.datapath.alus.size()));
}

}  // namespace
}  // namespace mframe::rtl
