#include "dfg/stats.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "workloads/benchmarks.h"

namespace mframe::dfg {
namespace {

TEST(Stats, CountsDiamond) {
  const auto st = computeStats(test::smallDiamond());
  EXPECT_EQ(st.nodes, 9u);
  EXPECT_EQ(st.operations, 4u);
  EXPECT_EQ(st.inputs, 5u);
  EXPECT_EQ(st.constants, 0u);
  EXPECT_EQ(st.outputs, 2u);
  EXPECT_EQ(st.criticalPath, 3);
  EXPECT_EQ(st.opMix.at(OpKind::Mul), 1);
}

TEST(Stats, MulticycleLengthensCriticalPath) {
  const auto st = computeStats(workloads::arLattice());
  EXPECT_EQ(st.criticalPath, 13);
  EXPECT_EQ(st.multicycleOps, 16u);
}

TEST(Stats, ConditionalOpsCounted) {
  const auto st = computeStats(test::branchy());
  EXPECT_EQ(st.conditionalOps, 2u);
}

TEST(Stats, FanoutTracksConsumers) {
  // In the diamond, inputs a..d feed one op each; `y` feeds one; the widest
  // is... every node has fanout 1 except outputs with none.
  const auto st = computeStats(test::smallDiamond());
  EXPECT_EQ(st.maxFanout, 1);
  // EWF's spine taps fan out to several consumers.
  const auto ewf = computeStats(workloads::ewfLike());
  EXPECT_GT(ewf.maxFanout, 2);
}

TEST(Stats, ParallelismRatio) {
  const auto st = computeStats(workloads::fir8());
  // 15 ops over a 4-step critical path.
  EXPECT_NEAR(st.parallelism, 15.0 / 4.0, 1e-9);
}

TEST(Stats, ToStringContainsHeadlines) {
  const std::string s = computeStats(workloads::diffeq()).toString();
  EXPECT_NE(s.find("11 ops"), std::string::npos);
  EXPECT_NE(s.find("critical path 4"), std::string::npos);
  EXPECT_NE(s.find("6*"), std::string::npos);
}

}  // namespace
}  // namespace mframe::dfg
