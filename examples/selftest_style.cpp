// Design-style comparison (Section 4.2): style 1 (unrestricted datapath) vs
// style 2 (no self-loop around ALUs, the self-testable structure of
// SYNTEST). Style 2 forbids an operation from sharing an ALU with its
// predecessors/successors, which costs some area — the paper reports a
// 2-11% overhead; this example prints the comparison over the whole suite.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "rtl/verify.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace mframe;
  const celllib::CellLibrary lib = celllib::ncrLike();

  util::Table table("MFSA design styles (NCR-like library)");
  table.setHeader({"design", "T", "style-1 ALUs", "style-1 cost", "style-2 ALUs",
                   "style-2 cost", "overhead"});

  for (const auto& bc : workloads::paperSuite()) {
    const int cs = bc.timeSweep.front();
    double cost[2] = {0, 0};
    std::string alus[2];
    bool ok = true;
    for (int sidx = 0; sidx < 2; ++sidx) {
      core::MfsaOptions ao;
      ao.constraints = bc.constraints;
      ao.constraints.timeSteps = cs;
      ao.style = sidx == 0 ? rtl::DesignStyle::Unrestricted
                           : rtl::DesignStyle::NoSelfLoop;
      const auto r = core::runMfsa(bc.graph, lib, ao);
      if (!r.feasible) {
        std::printf("%s style %d failed: %s\n", bc.graph.name().c_str(),
                    sidx + 1, r.error.c_str());
        ok = false;
        break;
      }
      const auto bad = rtl::verifyDatapath(r.datapath, ao.constraints, ao.style);
      if (!bad.empty()) {
        std::printf("%s style %d RTL violation: %s\n", bc.graph.name().c_str(),
                    sidx + 1, bad.front().c_str());
        ok = false;
        break;
      }
      cost[sidx] = r.cost.total;
      alus[sidx] = r.datapath.aluSummary();
    }
    if (!ok) continue;
    table.addRow({bc.graph.name(), std::to_string(cs), alus[0],
                  util::format("%.0f", cost[0]), alus[1],
                  util::format("%.0f", cost[1]),
                  util::format("%+.1f%%", 100.0 * (cost[1] / cost[0] - 1.0))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
