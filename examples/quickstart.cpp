// Quickstart: build a small DFG with the fluent API, schedule it with MFS
// under a time constraint, print the schedule, then run MFSA to get a full
// RTL structure with its cost breakdown.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "dfg/builder.h"
#include "rtl/controller.h"
#include "sched/verify.h"

int main() {
  using namespace mframe;

  // y = (a + b) * (c - d);  flag = y < limit
  dfg::Builder b("quickstart");
  const auto a = b.input("a");
  const auto bb = b.input("b");
  const auto c = b.input("c");
  const auto d = b.input("d");
  const auto limit = b.input("limit");
  const auto s = b.add(a, bb, "sum");
  const auto t = b.sub(c, d, "diff");
  const auto y = b.mul(s, t, "y");
  const auto f = b.lt(y, limit, "flag");
  b.output(y, "y");
  b.output(f, "flag");
  dfg::Dfg g = std::move(b).build();

  // --- MFS: balanced schedule in 3 control steps -------------------------
  core::MfsOptions mo;
  mo.constraints.timeSteps = 3;
  const core::MfsResult mfs = core::runMfs(g, mo);
  if (!mfs.feasible) {
    std::printf("MFS failed: %s\n", mfs.error.c_str());
    return 1;
  }
  std::printf("== MFS ==\n%s", mfs.schedule.toString().c_str());
  const auto violations = sched::verifySchedule(mfs.schedule, mo.constraints);
  std::printf("schedule verification: %s\n",
              violations.empty() ? "clean" : violations.front().c_str());

  // --- MFSA: schedule + allocation against the NCR-like library ----------
  const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions ao;
  ao.constraints.timeSteps = 3;
  const core::MfsaResult mfsa = core::runMfsa(g, lib, ao);
  if (!mfsa.feasible) {
    std::printf("MFSA failed: %s\n", mfsa.error.c_str());
    return 1;
  }
  std::printf("\n== MFSA ==\nALUs: %s\n%s\n",
              mfsa.datapath.aluSummary().c_str(), mfsa.cost.toString().c_str());

  const rtl::ControllerFsm fsm = rtl::buildController(mfsa.datapath);
  std::printf("\n%s", fsm.toString(g).c_str());
  return 0;
}
