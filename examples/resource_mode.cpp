// Resource-constrained synthesis (the dual problem): fix the hardware
// budget, minimize the schedule length — MFS with V = cs*x + y, and
// resource-constrained MFSA growing the schedule until the ALU budget fits.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "rtl/verify.h"
#include "sched/verify.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace mframe;
  const dfg::Dfg g = workloads::diffeq();
  std::printf("HAL diffeq under shrinking multiplier budgets:\n\n");

  for (int muls : {3, 2, 1}) {
    core::MfsOptions o;
    o.mode = core::MfsLiapunov::Mode::ResourceConstrained;
    o.constraints.fuLimit[dfg::FuType::Multiplier] = muls;
    o.constraints.fuLimit[dfg::FuType::Adder] = 1;
    o.constraints.fuLimit[dfg::FuType::Subtractor] = 1;
    o.constraints.fuLimit[dfg::FuType::Comparator] = 1;
    const auto r = core::runMfs(g, o);
    if (!r.feasible) {
      std::printf("  %d multiplier(s): infeasible (%s)\n", muls, r.error.c_str());
      continue;
    }
    sched::Constraints vc = o.constraints;
    vc.timeSteps = r.steps;
    const bool ok = sched::verifySchedule(r.schedule, vc).empty();
    std::printf("  %d multiplier(s): %d control steps (%s)\n", muls, r.steps,
                ok ? "valid" : "INVALID");
  }

  // Resource-constrained MFSA: cap the multiplier columns and let the
  // schedule stretch until the allocation fits.
  const celllib::CellLibrary lib = celllib::ncrLike();
  std::printf("\nMFSA with at most one multiplier-capable ALU:\n");
  core::MfsaOptions ao;
  ao.constraints.fuLimit[dfg::FuType::Multiplier] = 1;
  const auto r = core::runMfsaResourceConstrained(g, lib, ao);
  if (!r.feasible) {
    std::printf("  failed: %s\n", r.error.c_str());
    return 1;
  }
  sched::Constraints vc;
  vc.timeSteps = r.steps;
  const auto bad =
      rtl::verifyDatapath(r.datapath, vc, rtl::DesignStyle::Unrestricted);
  std::printf("  %d steps, ALUs %s\n  %s\n  RTL verification: %s\n", r.steps,
              r.datapath.aluSummary().c_str(), r.cost.toString().c_str(),
              bad.empty() ? "clean" : bad.front().c_str());
  return 0;
}
