// Case study: the 4x4 2-D DCT (96 operations) end to end — balanced
// scheduling across time constraints, functional pipelining throughput
// analysis, full MFSA synthesis and the schedule analytics report.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "pipeline/analysis.h"
#include "rtl/verify.h"
#include "sched/report.h"
#include "sched/verify.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace mframe;
  const dfg::Dfg g = workloads::dct2d4x4();
  std::printf("4x4 2-D DCT: %zu operations (32 mul, 64 add/sub), 16 inputs, "
              "16 outputs\n\n", g.operations().size());

  // Time-constraint sweep: watch the multiplier count collapse from the
  // frame-locked 16 at the critical path toward the balanced minimum.
  for (int cs : {6, 8, 10, 12, 16}) {
    core::MfsOptions o;
    o.constraints.timeSteps = cs;
    const auto r = core::runMfs(g, o);
    if (!r.feasible) {
      std::printf("  T=%2d: infeasible (%s)\n", cs, r.error.c_str());
      continue;
    }
    const bool ok = sched::verifySchedule(r.schedule, o.constraints).empty();
    std::string fus;
    for (const auto& [t, n] : r.fuCount)
      fus += std::to_string(n) + std::string(dfg::fuTypeSymbol(t)) + " ";
    std::printf("  T=%2d: %s(%s)\n", cs, fus.c_str(), ok ? "valid" : "INVALID");
  }

  // Functional pipelining: a new 4x4 block every L steps.
  std::printf("\nthroughput (folded, T=12):\n");
  for (const auto& p : pipeline::latencySweep(g, 12)) {
    if (!p.feasible || p.latency > 6) continue;
    std::printf("  L=%d: %d multipliers (lower bound %d), %d adders\n",
                p.latency,
                p.fuCount.count(dfg::FuType::Multiplier)
                    ? p.fuCount.at(dfg::FuType::Multiplier) : 0,
                p.lowerBound.at(dfg::FuType::Multiplier),
                p.fuCount.count(dfg::FuType::Adder)
                    ? p.fuCount.at(dfg::FuType::Adder) : 0);
  }

  // Full synthesis at T=10 with the analytics report.
  const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions ao;
  ao.constraints.timeSteps = 10;
  const auto r = core::runMfsa(g, lib, ao);
  if (!r.feasible) {
    std::printf("MFSA failed: %s\n", r.error.c_str());
    return 1;
  }
  const auto bad = rtl::verifyDatapath(r.datapath, ao.constraints,
                                       rtl::DesignStyle::Unrestricted);
  std::printf("\nMFSA at T=10: ALUs %s\n%s\nRTL verification: %s\n\n",
              r.datapath.aluSummary().c_str(), r.cost.toString().c_str(),
              bad.empty() ? "clean" : bad.front().c_str());

  core::MfsOptions mo;
  mo.constraints.timeSteps = 10;
  const auto mfs = core::runMfs(g, mo);
  if (mfs.feasible)
    std::printf("%s", sched::analyzeSchedule(mfs.schedule).toString().c_str());
  return 0;
}
