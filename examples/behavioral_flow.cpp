// The complete behavioral flow on one page: a design written in the input
// language with a conditional and a folded loop, compiled to a DFG,
// synthesized by MFSA, checked for testability, simulated against the
// behavioral reference, and dumped as a microcode ROM + VCD waveform.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "lang/lower.h"
#include "rtl/controller.h"
#include "rtl/microcode.h"
#include "rtl/testability.h"
#include "rtl/verify.h"
#include "sim/dfg_eval.h"
#include "sim/rtl_sim.h"

int main() {
  using namespace mframe;

  constexpr const char* kSource = R"(
design sensor_filter;
input raw, gain, offset, limit;
output scaled, alarm;

g1 = raw * gain [cycles=1];
adj = g1 + offset;
if (adj > limit) {
  clipped = limit + 0;
}
scaled = adj - 1;
alarm = adj > limit;
)";

  std::printf("compiling behavioral source...\n");
  const dfg::Dfg g = lang::compileFlat(kSource);
  std::printf("  -> DFG '%s': %zu operations\n\n", g.name().c_str(),
              g.operations().size());

  const celllib::CellLibrary lib = celllib::ncrLike();
  core::MfsaOptions o;
  o.constraints.timeSteps = 4;
  o.style = rtl::DesignStyle::NoSelfLoop;  // self-testable structure
  const auto r = core::runMfsa(g, lib, o);
  if (!r.feasible) {
    std::printf("synthesis failed: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("MFSA (style 2): ALUs %s\n%s\n",
              r.datapath.aluSummary().c_str(), r.cost.toString().c_str());
  std::printf("testability: %s\n",
              rtl::analyzeTestability(r.datapath).toString().c_str());
  const auto bad =
      rtl::verifyDatapath(r.datapath, o.constraints, o.style);
  std::printf("RTL verification: %s\n\n",
              bad.empty() ? "clean" : bad.front().c_str());

  const auto fsm = rtl::buildController(r.datapath);
  std::printf("%s\n", rtl::buildMicrocode(r.datapath, fsm).toString().c_str());

  const std::map<std::string, sim::Word> inputs{
      {"raw", 12}, {"gain", 3}, {"offset", 5}, {"limit", 30}};
  sim::SimTrace trace;
  const auto rtlOut = sim::simulateRtl(r.datapath, fsm, inputs, 16, &trace);
  const auto ref = sim::evalDfg(g, inputs);
  if (!rtlOut.ok || !ref.ok) {
    std::printf("simulation failed: %s%s\n", rtlOut.error.c_str(),
                ref.error.c_str());
    return 1;
  }
  std::printf("simulation (RTL vs behavioral):\n");
  for (const auto& [name, value] : ref.outputs)
    std::printf("  %-8s = %-6llu %s\n", name.c_str(),
                static_cast<unsigned long long>(rtlOut.outputs.at(name)),
                rtlOut.outputs.at(name) == value ? "(matches reference)"
                                                 : "(MISMATCH!)");

  const std::string vcd = sim::toVcd(trace, 16, g.name());
  std::printf("\nVCD waveform: %zu bytes (pipe to a file and open in any "
              "viewer)\n", vcd.size());
  return 0;
}
