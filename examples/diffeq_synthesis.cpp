// Full synthesis of the HAL differential-equation benchmark: MFS schedule,
// MFSA RTL structure, controller FSM, and structural Verilog output —
// the complete flow the paper's SYNTEST integration describes (Section 6).
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "dfg/dot.h"
#include "rtl/controller.h"
#include "rtl/verify.h"
#include "rtl/verilog.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

int main(int argc, char** argv) {
  using namespace mframe;
  const bool emitVerilog = argc > 1 && std::string_view(argv[1]) == "--verilog";

  const dfg::Dfg g = workloads::diffeq();
  std::printf("HAL diffeq: %zu nodes, %zu operations\n", g.size(),
              g.operations().size());

  // MFS sweep over time constraints: watch the multiplier count fall.
  for (int cs : {4, 5, 6, 8}) {
    core::MfsOptions mo;
    mo.constraints.timeSteps = cs;
    const auto r = core::runMfs(g, mo);
    if (!r.feasible) {
      std::printf("  T=%d: infeasible (%s)\n", cs, r.error.c_str());
      continue;
    }
    std::string fus;
    for (const auto& [t, n] : r.fuCount)
      fus += std::to_string(n) + std::string(dfg::fuTypeSymbol(t)) + " ";
    const auto bad = sched::verifySchedule(r.schedule, mo.constraints);
    std::printf("  T=%d: %s(%s)\n", cs, fus.c_str(),
                bad.empty() ? "valid" : bad.front().c_str());
  }

  // MFSA at T=4 with the NCR-like library, both design styles.
  const celllib::CellLibrary lib = celllib::ncrLike();
  for (const auto style : {rtl::DesignStyle::Unrestricted,
                           rtl::DesignStyle::NoSelfLoop}) {
    core::MfsaOptions ao;
    ao.constraints.timeSteps = 4;
    ao.style = style;
    const auto r = core::runMfsa(g, lib, ao);
    if (!r.feasible) {
      std::printf("MFSA style %d failed: %s\n",
                  style == rtl::DesignStyle::Unrestricted ? 1 : 2,
                  r.error.c_str());
      return 1;
    }
    const auto bad = rtl::verifyDatapath(r.datapath, ao.constraints, style);
    std::printf("\nMFSA style %d: ALUs %s\n  %s\n  RTL verification: %s\n",
                style == rtl::DesignStyle::Unrestricted ? 1 : 2,
                r.datapath.aluSummary().c_str(), r.cost.toString().c_str(),
                bad.empty() ? "clean" : bad.front().c_str());

    if (style == rtl::DesignStyle::Unrestricted && emitVerilog) {
      const auto fsm = rtl::buildController(r.datapath);
      std::printf("\n%s\n", rtl::toVerilog(r.datapath, fsm).c_str());
    }
  }
  return 0;
}
