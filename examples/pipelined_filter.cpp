// Pipelining showcase (Section 5.5): the AR lattice filter with 2-cycle
// multiplications, scheduled (a) plain, (b) with structurally pipelined
// multipliers, and (c) functionally pipelined (folded) at several latencies.
#include <cstdio>

#include "core/mfs.h"
#include "pipeline/functional.h"
#include "pipeline/structural.h"
#include "sched/verify.h"
#include "workloads/benchmarks.h"

namespace {

std::string fuString(const std::map<mframe::dfg::FuType, int>& fus) {
  std::string out;
  for (const auto& [t, n] : fus)
    out += std::to_string(n) + std::string(mframe::dfg::fuTypeSymbol(t)) + " ";
  return out;
}

}  // namespace

int main() {
  using namespace mframe;
  const dfg::Dfg g = workloads::arLattice();
  std::printf("AR lattice filter: %zu operations (16 two-cycle mul, 12 add)\n",
              g.operations().size());

  // (a) plain multicycle scheduling.
  for (int cs : {13, 14, 17}) {
    core::MfsOptions mo;
    mo.constraints.timeSteps = cs;
    const auto r = core::runMfs(g, mo);
    if (!r.feasible) {
      std::printf("  plain T=%d: infeasible (%s)\n", cs, r.error.c_str());
      continue;
    }
    const auto bad = sched::verifySchedule(r.schedule, mo.constraints);
    std::printf("  plain T=%d: %s(%s)\n", cs, fuString(r.fuCount).c_str(),
                bad.empty() ? "valid" : bad.front().c_str());
  }

  // (b) structurally pipelined multipliers: a multiplier accepts a new
  // operation every step, so fewer instances cover the same load.
  for (int cs : {13, 14, 17}) {
    core::MfsOptions mo;
    mo.constraints =
        pipeline::withStructuralPipelining({}, {dfg::FuType::Multiplier});
    mo.constraints.timeSteps = cs;
    const auto r = core::runMfs(g, mo);
    if (!r.feasible) {
      std::printf("  structural T=%d: infeasible\n", cs);
      continue;
    }
    const auto bad = sched::verifySchedule(r.schedule, mo.constraints);
    std::printf("  structural T=%d: %s(%s)\n", cs, fuString(r.fuCount).c_str(),
                bad.empty() ? "valid" : bad.front().c_str());
  }

  // (c) functional pipelining: a new sample enters every L steps; FU demand
  // is set by the busiest residue class, not by the schedule length.
  for (int latency : {4, 6, 8}) {
    const auto r = pipeline::runFunctionalPipelinedMfs(g, 16, latency);
    if (!r.feasible) {
      std::printf("  functional L=%d: infeasible (%s)\n", latency,
                  r.error.c_str());
      continue;
    }
    sched::Constraints vc;
    vc.timeSteps = 16;
    vc.latency = latency;
    const auto bad = sched::verifySchedule(r.mfs.schedule, vc);
    std::printf("  functional L=%d (T=16): %s(%s)\n", latency,
                fuString(r.fuCount).c_str(),
                bad.empty() ? "valid" : bad.front().c_str());
  }
  return 0;
}
