#!/usr/bin/env sh
# Drift gate: compare a freshly generated BENCH_runtime.json against the
# committed baseline.
#
#  * metrics counters — deterministic by construction (commutative sums over
#    fixed work; see src/trace/trace.h), so they are compared EXACTLY. Any
#    drift means an algorithm change landed and must be acknowledged by
#    regenerating the baseline with tools/bench-json.sh.
#  * benchmark timings — compared with a relative tolerance on real_time
#    (BENCH_COMPARE_TOL, default 0.50 = +50%); only slowdowns fail. Set
#    BENCH_COMPARE_SKIP_TIME=1 to skip timings entirely — always do so for
#    BENCH_MIN_TIME smoke reports, whose numbers are meaningless.
#
# Usage: tools/bench-compare.sh [fresh-report] [baseline-report]
#   fresh-report     default: build/BENCH_runtime.json
#   baseline-report  default: BENCH_runtime.json (committed)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
fresh=${1:-$repo/build/BENCH_runtime.json}
base=${2:-$repo/BENCH_runtime.json}

if ! command -v python3 >/dev/null 2>&1; then
  echo "bench-compare.sh: python3 not found; cannot compare" >&2
  exit 1
fi
for f in "$fresh" "$base"; do
  if [ ! -r "$f" ]; then
    echo "bench-compare.sh: cannot read $f" >&2
    exit 1
  fi
done

python3 - "$fresh" "$base" <<'EOF'
import json
import os
import sys

fresh = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
fails = []

# Counters: exact.
fm, bm = fresh.get("metrics"), base.get("metrics")
if bm is None:
    print("bench-compare: baseline has no metrics key; "
          "regenerate it with tools/bench-json.sh")
elif fm is None:
    fails.append("fresh report has no metrics key")
else:
    for run in sorted(bm):
        fc = fm.get(run, {}).get("counters", {})
        bc = bm[run].get("counters", {})
        for name in sorted(set(fc) | set(bc)):
            a, b = fc.get(name), bc.get(name)
            if a != b:
                fails.append(f"counter drift {run}.{name}: "
                             f"baseline {b} -> fresh {a}")

# Timings: relative tolerance, slowdowns only.
if os.environ.get("BENCH_COMPARE_SKIP_TIME") != "1":
    tol = float(os.environ.get("BENCH_COMPARE_TOL", "0.50"))
    for suite in ("runtime", "explore", "analyze", "tune", "audit", "cache",
                  "range", "scale"):
        by_name = {b["name"]: b
                   for b in fresh.get(suite, {}).get("benchmarks", [])}
        for b in base.get(suite, {}).get("benchmarks", []):
            f = by_name.get(b["name"])
            if f is None:
                fails.append(f"benchmark {suite}/{b['name']} "
                             "missing from fresh report")
                continue
            if b.get("real_time", 0) <= 0:
                continue
            rel = (f["real_time"] - b["real_time"]) / b["real_time"]
            if rel > tol:
                fails.append(f"benchmark {suite}/{b['name']} slowed "
                             f"{rel:+.0%} (tolerance {tol:.0%})")
else:
    print("bench-compare: timings skipped (BENCH_COMPARE_SKIP_TIME=1)")

for f in fails:
    print("bench-compare: FAIL:", f)
if fails:
    sys.exit(1)
print("bench-compare: OK")
EOF
