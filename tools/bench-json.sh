#!/usr/bin/env sh
# Run the google-benchmark binaries and merge their JSON reports into one
# BENCH_runtime.json tracking the repo's performance trajectory:
#   { "runtime": ..., "explore": ..., "analyze": ..., "tune": ...,
#     "audit": ..., "cache": ..., "range": ..., "scale": ..., "metrics": ... }
# — one google-benchmark report per binary, plus the pipeline counter
# metrics of two pinned CLI invocations (extracted from the '{"schema": 1,'
# marker object that --metrics=json appends to stdout). Counters are
# deterministic, so tools/bench-compare.sh gates on them exactly.
#
# Usage: tools/bench-json.sh [build-dir] [output-file]
#   build-dir    tree containing bench/bench_runtime (default: build)
#   output-file  merged report path (default: BENCH_runtime.json in the repo)
#
# BENCH_MIN_TIME (seconds, e.g. 0.01) shortens each measurement for CI smoke
# runs; leave it unset for trustworthy numbers.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-$repo/build}
out=${2:-$repo/BENCH_runtime.json}

for bin in bench_runtime bench_explore bench_analyze bench_tune bench_audit \
           bench_cache bench_range bench_scale; do
  if [ ! -x "$build/bench/$bin" ]; then
    echo "bench-json.sh: $build/bench/$bin not built" >&2
    exit 1
  fi
done

minTimeArg=""
if [ "${BENCH_MIN_TIME:-}" != "" ]; then
  minTimeArg="--benchmark_min_time=$BENCH_MIN_TIME"
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# shellcheck disable=SC2086  # minTimeArg is intentionally word-split
"$build/bench/bench_runtime" --benchmark_format=json $minTimeArg \
  > "$tmp/runtime.json"
# shellcheck disable=SC2086
"$build/bench/bench_explore" --benchmark_format=json $minTimeArg \
  > "$tmp/explore.json"
# shellcheck disable=SC2086
"$build/bench/bench_analyze" --benchmark_format=json $minTimeArg \
  > "$tmp/analyze.json"
# shellcheck disable=SC2086
"$build/bench/bench_tune" --benchmark_format=json $minTimeArg \
  > "$tmp/tune.json"
# shellcheck disable=SC2086
"$build/bench/bench_audit" --benchmark_format=json $minTimeArg \
  > "$tmp/audit.json"
# shellcheck disable=SC2086
"$build/bench/bench_cache" --benchmark_format=json $minTimeArg \
  > "$tmp/cache.json"
# shellcheck disable=SC2086
"$build/bench/bench_range" --benchmark_format=json $minTimeArg \
  > "$tmp/range.json"
# shellcheck disable=SC2086
"$build/bench/bench_scale" --benchmark_format=json $minTimeArg \
  > "$tmp/scale.json"

# Counter metrics from pinned CLI runs. python3 is only needed for this
# extraction; without it the report simply lacks the metrics key (and
# bench-compare.sh will say so).
haveMetrics=0
if command -v python3 >/dev/null 2>&1 && [ -x "$build/tools/mframe" ]; then
  designs="$repo/tools/designs"
  "$build/tools/mframe" synth "$designs/diffeq.mfb" --steps 4 \
    --metrics=json > "$tmp/synth.out"
  "$build/tools/mframe" explore "$designs/diffeq.mfb" --jobs 2 \
    --metrics=json > "$tmp/explore.out"
  "$build/tools/mframe" tune "$designs/slowchain.dfg" --clock 100 --jobs 2 \
    --metrics=json > "$tmp/tune.out"
  "$build/tools/mframe" audit "$designs/diffeq.mfb" --steps 4 \
    --metrics=json > "$tmp/audit.out"
  "$build/tools/mframe" range "$designs/chained.dfg" --steps 6 \
    --metrics=json > "$tmp/range.out"
  # Cache counters: a cold run populates a scratch cache, the warm rerun's
  # counters (1 hit, 0 misses) are the pinned, deterministic gate values.
  "$build/tools/mframe" synth "$designs/diffeq.mfb" --steps 4 \
    --cache "$tmp/synthcache" --metrics=json > /dev/null
  "$build/tools/mframe" synth "$designs/diffeq.mfb" --steps 4 \
    --cache "$tmp/synthcache" --metrics=json > "$tmp/cachewarm.out"
  python3 - "$tmp/synth.out" "$tmp/explore.out" "$tmp/tune.out" \
    "$tmp/audit.out" "$tmp/cachewarm.out" "$tmp/range.out" \
    > "$tmp/metrics.json" <<'EOF'
import json
import sys

def extract(path):
    text = open(path).read()
    i = text.rfind('{"schema": 1,')
    if i < 0:
        raise SystemExit(f"bench-json.sh: no metrics marker in {path}")
    return json.loads(text[i:])

print(json.dumps({
    "synth_diffeq": extract(sys.argv[1]),
    "explore_diffeq": extract(sys.argv[2]),
    "tune_slowchain": extract(sys.argv[3]),
    "audit_diffeq": extract(sys.argv[4]),
    "synth_diffeq_cache_warm": extract(sys.argv[5]),
    "range_chained": extract(sys.argv[6]),
}, indent=1))
EOF
  haveMetrics=1
else
  echo "bench-json.sh: python3 or tools/mframe missing; omitting metrics" >&2
fi

{
  printf '{\n"runtime":\n'
  cat "$tmp/runtime.json"
  printf ',\n"explore":\n'
  cat "$tmp/explore.json"
  printf ',\n"analyze":\n'
  cat "$tmp/analyze.json"
  printf ',\n"tune":\n'
  cat "$tmp/tune.json"
  printf ',\n"audit":\n'
  cat "$tmp/audit.json"
  printf ',\n"cache":\n'
  cat "$tmp/cache.json"
  printf ',\n"range":\n'
  cat "$tmp/range.json"
  printf ',\n"scale":\n'
  cat "$tmp/scale.json"
  if [ "$haveMetrics" = 1 ]; then
    printf ',\n"metrics":\n'
    cat "$tmp/metrics.json"
  fi
  printf '}\n'
} > "$out"

echo "bench-json.sh: wrote $out"
