#!/usr/bin/env sh
# Run the google-benchmark binaries and merge their JSON reports into one
# BENCH_runtime.json tracking the repo's performance trajectory:
#   { "runtime": ..., "explore": ..., "analyze": ... } — one google-benchmark
#   report per binary
#
# Usage: tools/bench-json.sh [build-dir] [output-file]
#   build-dir    tree containing bench/bench_runtime (default: build)
#   output-file  merged report path (default: BENCH_runtime.json in the repo)
#
# BENCH_MIN_TIME (seconds, e.g. 0.01) shortens each measurement for CI smoke
# runs; leave it unset for trustworthy numbers.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-$repo/build}
out=${2:-$repo/BENCH_runtime.json}

for bin in bench_runtime bench_explore bench_analyze; do
  if [ ! -x "$build/bench/$bin" ]; then
    echo "bench-json.sh: $build/bench/$bin not built" >&2
    exit 1
  fi
done

minTimeArg=""
if [ "${BENCH_MIN_TIME:-}" != "" ]; then
  minTimeArg="--benchmark_min_time=$BENCH_MIN_TIME"
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# shellcheck disable=SC2086  # minTimeArg is intentionally word-split
"$build/bench/bench_runtime" --benchmark_format=json $minTimeArg \
  > "$tmp/runtime.json"
# shellcheck disable=SC2086
"$build/bench/bench_explore" --benchmark_format=json $minTimeArg \
  > "$tmp/explore.json"
# shellcheck disable=SC2086
"$build/bench/bench_analyze" --benchmark_format=json $minTimeArg \
  > "$tmp/analyze.json"

{
  printf '{\n"runtime":\n'
  cat "$tmp/runtime.json"
  printf ',\n"explore":\n'
  cat "$tmp/explore.json"
  printf ',\n"analyze":\n'
  cat "$tmp/analyze.json"
  printf '}\n'
} > "$out"

echo "bench-json.sh: wrote $out"
