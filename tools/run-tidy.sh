#!/usr/bin/env sh
# Run clang-tidy over the library and tool sources using the compile database
# of an existing build tree. Findings are promoted to errors so the script
# (and tools/ci.sh, which calls it) fails on any new warning; pass
# --warnings-as-errors='' after the build dir to downgrade while iterating.
#
# Usage: tools/run-tidy.sh [build-dir] [extra clang-tidy args...]
#
# The build tree must have been configured with
#   cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
# so that <build-dir>/compile_commands.json exists.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
[ $# -gt 0 ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run-tidy.sh: clang-tidy not found in PATH; skipping" >&2
  exit 0
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run-tidy.sh: $build/compile_commands.json missing." >&2
  echo "Configure with: cmake -B $build -S $repo -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

# Sources in listing order; headers ride along through HeaderFilterRegex in
# .clang-tidy. (No spaces in repo paths, so word splitting is safe.)
status=0
for f in $(find "$repo/src" "$repo/tools" -name '*.cpp' | sort); do
  echo "== $f"
  clang-tidy -p "$build" --warnings-as-errors='*' "$@" "$f" || status=1
done
exit "$status"
