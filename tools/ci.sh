#!/usr/bin/env sh
# Full local CI sweep: build and test the tree twice — once plain, once
# instrumented with AddressSanitizer+UBSan — then run clang-tidy over the
# sources. This is the same gauntlet the validator and lint fixtures are
# developed against; a clean run means "safe to push".
#
# Usage: tools/ci.sh [jobs]
#
# Build trees land in build-ci/ (plain) and build-ci-asan/ (sanitized) so an
# existing build/ tree is left alone.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${1:-$(nproc 2>/dev/null || echo 4)}

run_tree() {
  dir=$1
  shift
  echo "==== configure $dir ($*)"
  cmake -B "$repo/$dir" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  echo "==== build $dir"
  cmake --build "$repo/$dir" -j "$jobs"
  echo "==== ctest $dir"
  (cd "$repo/$dir" && ctest --output-on-failure -j "$jobs")
}

run_tree build-ci
run_tree build-ci-asan -DMFRAME_SANITIZE=address,undefined

echo "==== clang-tidy"
"$repo/tools/run-tidy.sh" "$repo/build-ci"

echo "==== ci.sh: all green"
