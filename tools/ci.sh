#!/usr/bin/env sh
# Full local CI sweep: build and test the tree four times — plain,
# instrumented with AddressSanitizer+UBSan, instrumented with
# ThreadSanitizer (the explorer's worker threads, the audit/range parallel
# per-state scans and the synthesis cache they share are the repo's only
# concurrency, so the TSan tree runs just those tests), and instrumented
# with UBSan alone for the checked-arithmetic interval code — then run
# clang-tidy over the sources with warnings promoted to errors. This is the
# same gauntlet the validator and lint fixtures are developed against; a
# clean run means "safe to push".
#
# Usage: tools/ci.sh [jobs]
#
# Build trees land in build-ci/ (plain), build-ci-asan/, build-ci-tsan/ and
# build-ci-ubsan/ (sanitized) so an existing build/ tree is left alone.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${1:-$(nproc 2>/dev/null || echo 4)}

run_tree() {
  dir=$1
  shift
  echo "==== configure $dir ($*)"
  cmake -B "$repo/$dir" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
  echo "==== build $dir"
  cmake --build "$repo/$dir" -j "$jobs"
  echo "==== ctest $dir"
  (cd "$repo/$dir" && ctest --output-on-failure -j "$jobs")
}

run_tree build-ci
run_tree build-ci-asan -DMFRAME_SANITIZE=address,undefined

# ThreadSanitizer tree (TSan and ASan cannot share a binary, hence the third
# tree). Only the concurrent code is interesting here — the explorer and its
# thread pool — so build the test binary and run that suite at a high jobs
# count instead of the whole ctest sweep.
echo "==== configure build-ci-tsan (-DMFRAME_SANITIZE=thread)"
cmake -B "$repo/build-ci-tsan" -S "$repo" -DMFRAME_SANITIZE=thread
echo "==== build build-ci-tsan (mframe_tests)"
cmake --build "$repo/build-ci-tsan" -j "$jobs" --target mframe_tests
echo "==== explorer/thread-pool, tune, audit, range, cache and DFG concurrency tests under TSan"
"$repo/build-ci-tsan/tests/mframe_tests" \
  --gtest_filter='Explore*:Tune.*:Audit*:Range*:Cache*:DfgConcurrency*' \
  --gtest_brief=1

# Scale smoke under TSan: a 10k-op synthesis drives the frontier scheduler's
# span walks over the shared frozen graph with sanitizer bookkeeping on.
echo "==== 10k-op synth smoke under TSan"
cmake --build "$repo/build-ci-tsan" -j "$jobs" --target mframe
"$repo/build-ci-tsan/tools/mframe" synth \
  random:conv,ops=10000,width=64 --metrics > /dev/null

# UndefinedBehaviorSanitizer-only tree: the interval lattice and the
# constant folder lean on checked arithmetic (__builtin_*_overflow plus
# explicit shift guards), and UBSan alone — without ASan redzones slowing
# everything down — is the cheapest way to prove every wrap really is
# checked. Run the interval/dataflow and range suites, where all of that
# arithmetic lives.
echo "==== configure build-ci-ubsan (-DMFRAME_SANITIZE=undefined)"
cmake -B "$repo/build-ci-ubsan" -S "$repo" -DMFRAME_SANITIZE=undefined
echo "==== build build-ci-ubsan (mframe_tests)"
cmake --build "$repo/build-ci-ubsan" -j "$jobs" --target mframe_tests
echo "==== interval, dataflow and range arithmetic under UBSan"
"$repo/build-ci-ubsan/tests/mframe_tests" \
  --gtest_filter='Range*:Ranges*:ConstProp*:DataflowEngine*:Bind*' \
  --gtest_brief=1

# Scale smoke in the plain tree: a 100k-op random DFG through the full
# synth and analyze pipelines must stay in single-digit seconds (ISSUE-10
# acceptance bound; `timeout` turns a quadratic regression into a hard
# failure instead of a hung CI run).
echo "==== 100k-op synth + analyze smoke (plain tree)"
timeout 120 "$repo/build-ci/tools/mframe" synth \
  random:conv,ops=100000,width=64 --metrics > /dev/null
timeout 120 "$repo/build-ci/tools/mframe" analyze \
  random:conv,ops=100000,width=64 > /dev/null

# And a 10k-op pass under ASan/UBSan, where redzones would make 100k crawl.
echo "==== 10k-op synth smoke under ASan/UBSan"
"$repo/build-ci-asan/tools/mframe" synth \
  random:conv,ops=10000,width=64 --metrics > /dev/null

# Perf benches run under the plain tree only (sanitizer overhead would make
# the numbers meaningless): a short smoke pass of bench_runtime/bench_explore
# via bench-json.sh, archiving the merged report next to the build tree.
echo "==== benches (smoke) build-ci"
BENCH_MIN_TIME=0.01 "$repo/tools/bench-json.sh" "$repo/build-ci" \
  "$repo/build-ci/BENCH_runtime.json"

# Trace smoke: synthesize diffeq with tracing on and validate the Chrome
# trace-event JSON — every pipeline phase span present, metrics embedded.
echo "==== trace smoke (synth diffeq --trace)"
"$repo/build-ci/tools/mframe" synth "$repo/tools/designs/diffeq.mfb" \
  --steps 4 --trace "$repo/build-ci/diffeq_trace.json" --metrics=json \
  > /dev/null
python3 - "$repo/build-ci/diffeq_trace.json" <<'EOF'
import json
import sys

d = json.load(open(sys.argv[1]))
names = {e["name"] for e in d["traceEvents"]}
need = {"parse", "preflight-lint", "timeframes", "mfsa",
        "rtl.datapath", "rtl.controller"}
missing = need - names
assert not missing, f"trace smoke: missing spans {missing}"
assert d["metrics"]["counters"]["mfsa.candidates"] > 0
print(f"trace smoke: ok ({len(d['traceEvents'])} events)")
EOF

# Counter drift gate against the committed baseline. Timings are skipped:
# the smoke report above used BENCH_MIN_TIME and its numbers mean nothing,
# but the counters are deterministic and must match the baseline exactly.
echo "==== bench-compare (counter drift gate)"
BENCH_COMPARE_SKIP_TIME=1 "$repo/tools/bench-compare.sh" \
  "$repo/build-ci/BENCH_runtime.json" "$repo/BENCH_runtime.json"

# The explorer's worker threads, the tune candidate race and the audit's
# parallel per-step scan are exactly the code the sanitizers should chew
# on; ctest above already ran the whole suite under ASan/UBSan, but run the
# determinism tests once more explicitly at a high jobs count.
echo "==== explorer, tune, audit, range and cache determinism under ASan/UBSan"
"$repo/build-ci-asan/tests/mframe_tests" \
  --gtest_filter='Explore*:Tune.*:Audit*:Range*:Cache*' --gtest_brief=1

echo "==== clang-tidy (warnings are errors)"
"$repo/tools/run-tidy.sh" "$repo/build-ci"

echo "==== ci.sh: all green"
