// mframe — command-line driver for the libmframe synthesis flow.
//
//   mframe schedule <file> --steps N [options]      MFS scheduling
//   mframe synth    <file> --steps N [options]      MFSA scheduling-allocation
//   mframe analyze  <file> [options]                dataflow + timing analysis
//   mframe tune     <file> --clock NS [options]     feedback-guided re-scheduling
//   mframe lint     <file> [options]                structural diagnostics
//   mframe prove    <file> [options]                translation validation
//   mframe audit    <file> [options]                reference-free RTL audit
//   mframe range    <file> [options]                interval width/overflow proofs
//
// <file> is either the behavioral language (.mfb, 'design ...') or the
// textual DFG format (.dfg, 'dfg ...'); the format is sniffed from the first
// keyword. Passing "-" (or omitting the file) reads the design from stdin,
// so designs can be piped straight in: `echo "..." | mframe lint`.
// A `random:<topology>[,key=value...]` pseudo-path generates a synthetic
// workload instead (topologies layered|conv|lstm|transformer; keys ops,
// seed, width, inputs, mul, twocycle), e.g.
// `mframe analyze random:conv,ops=100000,width=64`.
// Every command runs the DFG lint rules up front; `lint` runs them
// alone (plus schedule rules with --schedule) and reports structured
// diagnostics as text or JSON (see docs/LINT.md). Common options:
//   --steps N            time constraint (control steps)
//   --resource T=K,...   per-FU-type limits (add, sub, mul, div, cmp, ...)
//   --mode time|resource MFS objective (default time)
//   --chaining [--clock NS]
//   --latency L          functional pipelining (folded)
//   --pipelined-mults    structurally pipelined multipliers
//   --priority mobility|noreverse|insertion
// synth-only:
//   --style 1|2          RTL design style (2 = no self-loop, self-testable)
//   --weights T,A,M,R    Liapunov weights
//   --verilog            print structural Verilog
//   --controller         print the FSM micro-program
//   --sim a=1,b=2,...    simulate the RTL and print outputs (checked
//                        against the behavioral reference)
//   --prove              run the translation validator on the result
// lint-only:
//   --json               emit diagnostics as JSON instead of text
//   --fail-on WHAT       exit nonzero at a severity (error|warning|note,
//                        default error), or when a specific rule id
//                        (TIM001) or rule family (TIM, AUD) fires
//   --schedule FILE      also lint a saved schedule against the design
//   --library FILE       also lint a cell library against the design
// analyze-only:
//   --fix                print the design with constants folded and dead
//                        operations removed (diagnostics go to stderr)
//   --no-timing          run only the dataflow passes (no synthesis)
// prove-only:
//   --scheduler NAME     mfsa|mfs|asap|list|fds (default mfsa); mfsa/mfs/fds
//                        need --steps, asap/list pace themselves
//   --bind FILE          validate an explicit .bind design instead of
//                        synthesizing one (see docs/FORMATS.md)
// common output options:
//   --dot                print Graphviz DOT of the scheduled DFG
//   --trace FILE         write a Chrome trace-event JSON of the run
//   --metrics[=json]     print pipeline counters after the run
//   --cache DIR          persistent synthesis cache: schedule/synth/explore/
//                        tune/prove/audit replay verified results instead of
//                        resynthesizing; small edits resynthesize only the
//                        affected cone (see docs/CACHE.md)
//   --cache-stats        print hit/miss/store counts to stderr after the run
//
// schedule/synth default --steps to the design's critical path when omitted
// in time-constrained mode (a note goes to stderr).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "analysis/audit/audit.h"
#include "analysis/criticality/tune.h"
#include "analysis/range/range.h"
#include "analysis/lint.h"
#include "analysis/rules.h"
#include "analysis/validate/bind_io.h"
#include "baseline/asap_sched.h"
#include "cache/resynth.h"
#include "cache/store.h"
#include "baseline/fds.h"
#include "baseline/list_sched.h"
#include "celllib/library_io.h"
#include "celllib/ncr_like.h"
#include "rtl/microcode.h"
#include "rtl/rtl_dot.h"
#include "rtl/testability.h"
#include "rtl/testbench.h"
#include "sched/slack.h"
#include "sched/timeframes.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "dfg/dot.h"
#include "dfg/parser.h"
#include "dfg/stats.h"
#include "explore/explore.h"
#include "lang/lower.h"
#include "rtl/controller.h"
#include "rtl/verify.h"
#include "rtl/verilog.h"
#include "sched/report.h"
#include "sched/schedule_io.h"
#include "sched/verify.h"
#include "sim/dfg_eval.h"
#include "sim/rtl_sim.h"
#include "trace/trace.h"
#include "util/strings.h"
#include "workloads/random_dfg.h"

namespace {

using namespace mframe;

constexpr const char* kUsage =
    "usage: mframe <schedule|synth|analyze|tune|explore|lint|prove|audit|range> <file> [options]\n"
    "  schedule <file> --steps N    MFS scheduling\n"
    "  synth    <file> --steps N    MFSA scheduling-allocation\n"
    "  analyze  <file>              dataflow analysis + static timing (OPT/TIM)\n"
    "  tune     <file> --clock NS   feedback-guided iterative re-scheduling\n"
    "  explore  <file> [--jobs N]   sweep MFSA configurations in parallel\n"
    "  lint     <file>              structural diagnostics (no scheduling)\n"
    "  prove    <file>              synthesize and validate the translation\n"
    "  audit    <file>              reference-free RTL safety audit (AUD)\n"
    "  range    <file>              interval width/overflow proofs (WID)\n"
    "common options: --resource T=K,... --mode time|resource --chaining\n"
    "  --clock NS --latency L --pipelined-mults --priority RULE --report --dot\n"
    "synth options:  --style 1|2 --weights T,A,M,R --library FILE --verilog\n"
    "  --controller --microcode --testability --testbench --rtl-dot --timing\n"
    "  --sim a=1,b=2 [--vcd FILE] --prove --audit --range\n"
    "analyze options: --json --fail-on SEV --fix --no-timing --steps N\n"
    "  --chaining --clock NS --library FILE\n"
    "explore options: --jobs N (worker threads, default: hardware) --json\n"
    "  --steps N (single step budget; default sweeps critical..critical+3)\n"
    "tune options:   --clock NS (required) --budget N --hops K --jobs N\n"
    "  --json (chaining is implied; --steps caps the initial schedule)\n"
    "lint options:   --json --fail-on error|warning|note --schedule FILE\n"
    "  --library FILE\n"
    "prove options:  --scheduler mfsa|mfs|asap|list|fds --bind FILE --json\n"
    "  --fail-on WHAT --library FILE\n"
    "audit options:  --scheduler mfsa|mfs|asap|list|fds --bind FILE --json\n"
    "  --fail-on WHAT --jobs N --library FILE --ranges (refine reachability\n"
    "  with the interval analysis before auditing; adds WID findings)\n"
    "range options:  --scheduler mfsa|mfs|asap|list|fds --bind FILE --json\n"
    "  --fail-on WHAT --jobs N --library FILE (.bind assert statements\n"
    "  become WID005 obligations; see docs/RANGE.md)\n"
    "--fail-on WHAT: a severity (error|warning|note), an exact rule id\n"
    "  (e.g. AUD002), or a rule family prefix (e.g. TIM, AUD); repeatable\n"
    "tracing/metrics: --trace FILE (Chrome trace-event JSON)\n"
    "  --metrics[=json] (pipeline counters after the run)\n"
    "caching: --cache DIR (persistent synthesis memoization + incremental\n"
    "  resynthesis) --cache-stats (hit/miss summary on stderr)\n"
    "<file> may be '-' (or omitted) to read the design from stdin\n";

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "mframe: %s\n", msg.c_str());
  std::exit(2);
}

/// Argument errors additionally print the usage string.
[[noreturn]] void dieUsage(const std::string& msg) {
  std::fprintf(stderr, "mframe: %s\n%s", msg.c_str(), kUsage);
  std::exit(2);
}

struct Cli {
  std::string command;
  std::string file;
  int steps = 0;
  core::MfsLiapunov::Mode mode = core::MfsLiapunov::Mode::TimeConstrained;
  sched::Constraints constraints;
  sched::PriorityRule priority = sched::PriorityRule::Mobility;
  rtl::DesignStyle style = rtl::DesignStyle::Unrestricted;
  core::MfsaWeights weights;
  bool emitVerilog = false;
  bool emitController = false;
  bool emitDot = false;
  bool emitReport = false;
  bool emitMicrocode = false;
  bool emitTestability = false;
  bool emitTestbench = false;
  bool emitRtlDot = false;
  bool emitSlack = false;
  bool emitStats = false;
  std::string vcdPath;
  std::string libraryPath;
  std::map<std::string, sim::Word> simInputs;
  bool doSim = false;
  // lint-only options
  bool jsonOut = false;
  analysis::Severity failOn = analysis::Severity::Error;
  std::vector<std::string> failOnRules;     ///< exact ids, e.g. "AUD002"
  std::vector<std::string> failOnFamilies;  ///< prefixes, e.g. "TIM", "AUD"
  std::string schedulePath;
  // analyze options
  bool clockSet = false;  ///< the user passed --clock (vs the 100 ns default)
  bool doFix = false;
  bool noTiming = false;
  bool emitTiming = false;  ///< synth --timing
  // prove options
  bool doProve = false;
  std::string bindPath;
  std::string schedulerName = "mfsa";
  // audit options
  bool doAudit = false;  ///< synth --audit
  // range options
  bool doRange = false;     ///< synth --range
  bool withRanges = false;  ///< audit --ranges
  // explore options
  int jobs = 0;  ///< 0 = hardware concurrency
  // tune options
  int budget = 8;  ///< --budget: maximum tune iterations
  int hops = 2;    ///< --hops: cone radius around violating endpoints
  // tracing / metrics
  std::string tracePath;        ///< --trace FILE; empty = no tracing
  bool metrics = false;         ///< --metrics[=...]
  bool metricsJsonOut = false;  ///< --metrics=json
  // caching
  std::string cachePath;        ///< --cache DIR; empty = no caching
  bool cacheStats = false;      ///< --cache-stats
};

Cli parseArgs(int argc, char** argv) {
  Cli c;
  if (argc < 2) dieUsage("expected a command and an input file");
  c.command = argv[1];
  if (c.command != "schedule" && c.command != "synth" && c.command != "lint" &&
      c.command != "prove" && c.command != "explore" &&
      c.command != "analyze" && c.command != "tune" && c.command != "audit" &&
      c.command != "range")
    dieUsage("unknown command '" + c.command + "'");

  // A missing file argument (or an explicit "-") reads the design from
  // stdin, so `echo "op add ..." | mframe lint` just works.
  int firstOpt = 3;
  if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
    c.file = "-";
    firstOpt = 2;
  } else {
    c.file = argv[2];
  }

  for (int i = firstOpt; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--opt value" and "--opt=value".
    std::string inlineValue;
    bool hasInline = false;
    if (a.rfind("--", 0) == 0) {
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        inlineValue = a.substr(eq + 1);
        a.erase(eq);
        hasInline = true;
      }
    }
    auto next = [&]() -> std::string {
      if (hasInline) {
        hasInline = false;
        return inlineValue;
      }
      if (++i >= argc) dieUsage("missing value after " + a);
      return argv[i];
    };
    if (a == "--steps") {
      c.steps = static_cast<int>(util::parseLong(next()));
    } else if (a == "--resource") {
      for (const auto& part : util::split(next(), ',')) {
        const auto kv = util::split(part, '=');
        dfg::FuType t;
        if (kv.size() != 2 || !dfg::parseFuType(kv[0], t))
          die("bad --resource entry '" + part + "'");
        c.constraints.fuLimit[t] = static_cast<int>(util::parseLong(kv[1]));
      }
    } else if (a == "--mode") {
      const std::string m = next();
      if (m == "time") c.mode = core::MfsLiapunov::Mode::TimeConstrained;
      else if (m == "resource") c.mode = core::MfsLiapunov::Mode::ResourceConstrained;
      else die("bad --mode '" + m + "'");
    } else if (a == "--chaining") {
      c.constraints.allowChaining = true;
    } else if (a == "--clock") {
      c.constraints.clockNs = std::strtod(next().c_str(), nullptr);
      c.clockSet = true;
    } else if (a == "--latency") {
      c.constraints.latency = static_cast<int>(util::parseLong(next()));
    } else if (a == "--pipelined-mults") {
      c.constraints.pipelinedFus.insert(dfg::FuType::Multiplier);
    } else if (a == "--priority") {
      const std::string p = next();
      if (p == "mobility") c.priority = sched::PriorityRule::Mobility;
      else if (p == "noreverse") c.priority = sched::PriorityRule::MobilityNoReverse;
      else if (p == "insertion") c.priority = sched::PriorityRule::InsertionOrder;
      else die("bad --priority '" + p + "'");
    } else if (a == "--style") {
      const std::string s = next();
      if (s == "1") c.style = rtl::DesignStyle::Unrestricted;
      else if (s == "2") c.style = rtl::DesignStyle::NoSelfLoop;
      else die("bad --style '" + s + "'");
    } else if (a == "--weights") {
      const auto w = util::split(next(), ',');
      if (w.size() != 4) die("--weights needs T,A,M,R");
      c.weights.time = std::strtod(w[0].c_str(), nullptr);
      c.weights.alu = std::strtod(w[1].c_str(), nullptr);
      c.weights.mux = std::strtod(w[2].c_str(), nullptr);
      c.weights.reg = std::strtod(w[3].c_str(), nullptr);
    } else if (a == "--verilog") {
      c.emitVerilog = true;
    } else if (a == "--controller") {
      c.emitController = true;
    } else if (a == "--dot") {
      c.emitDot = true;
    } else if (a == "--report") {
      c.emitReport = true;
    } else if (a == "--microcode") {
      c.emitMicrocode = true;
    } else if (a == "--testability") {
      c.emitTestability = true;
    } else if (a == "--vcd") {
      c.vcdPath = next();
    } else if (a == "--testbench") {
      c.emitTestbench = true;
    } else if (a == "--rtl-dot") {
      c.emitRtlDot = true;
    } else if (a == "--slack") {
      c.emitSlack = true;
    } else if (a == "--stats") {
      c.emitStats = true;
    } else if (a == "--library") {
      c.libraryPath = next();
    } else if (a == "--json") {
      c.jsonOut = true;
    } else if (a == "--fail-on") {
      // A severity threshold, an exact rule id, or a rule family prefix;
      // rule/family forms are repeatable and combine.
      const std::string s = next();
      if (analysis::parseSeverity(s, c.failOn)) {
        // threshold updated in place
      } else if (analysis::findRule(s) != nullptr) {
        c.failOnRules.push_back(s);
      } else if (analysis::isRuleFamilyPrefix(s)) {
        c.failOnFamilies.push_back(s);
      } else {
        dieUsage("bad --fail-on '" + s +
                 "' (use error|warning|note, a rule id like AUD002, or a "
                 "rule family like TIM or AUD)");
      }
    } else if (a == "--schedule") {
      c.schedulePath = next();
    } else if (a == "--jobs") {
      c.jobs = static_cast<int>(util::parseLong(next()));
      if (c.jobs < 1) die("--jobs needs a positive thread count");
    } else if (a == "--budget") {
      c.budget = static_cast<int>(util::parseLong(next()));
      if (c.budget < 1) die("--budget needs a positive iteration count");
    } else if (a == "--hops") {
      c.hops = static_cast<int>(util::parseLong(next()));
      if (c.hops < 1) die("--hops needs a positive cone radius");
    } else if (a == "--prove") {
      c.doProve = true;
    } else if (a == "--audit") {
      c.doAudit = true;
    } else if (a == "--range") {
      c.doRange = true;
    } else if (a == "--ranges") {
      c.withRanges = true;
    } else if (a == "--fix") {
      c.doFix = true;
    } else if (a == "--no-timing") {
      c.noTiming = true;
    } else if (a == "--timing") {
      c.emitTiming = true;
    } else if (a == "--bind") {
      c.bindPath = next();
    } else if (a == "--scheduler") {
      c.schedulerName = next();
      if (c.schedulerName != "mfsa" && c.schedulerName != "mfs" &&
          c.schedulerName != "asap" && c.schedulerName != "list" &&
          c.schedulerName != "fds")
        dieUsage("bad --scheduler '" + c.schedulerName +
                 "' (use mfsa|mfs|asap|list|fds)");
    } else if (a == "--cache") {
      c.cachePath = next();
    } else if (a == "--cache-stats") {
      c.cacheStats = true;
    } else if (a == "--trace") {
      c.tracePath = next();
    } else if (a == "--metrics") {
      c.metrics = true;
      if (hasInline) {
        const std::string m = next();
        if (m == "json") c.metricsJsonOut = true;
        else if (m != "text") dieUsage("bad --metrics '" + m + "' (use text|json)");
      }
    } else if (a == "--sim") {
      c.doSim = true;
      for (const auto& part : util::split(next(), ',')) {
        const auto kv = util::split(part, '=');
        if (kv.size() != 2) die("bad --sim entry '" + part + "'");
        c.simInputs[kv[0]] =
            static_cast<sim::Word>(util::parseLong(kv[1]));
      }
    } else {
      dieUsage("unknown option '" + a + "'");
    }
    if (hasInline) dieUsage("option " + a + " does not take a value");
  }
  return c;
}

/// Exit-status policy for diagnostic-emitting commands: with --fail-on rule
/// ids or family prefixes, fail iff a matching diagnostic fired (any
/// severity); otherwise fail at or above the severity threshold.
bool failsPolicy(const Cli& cli, const analysis::LintReport& r) {
  if (cli.failOnRules.empty() && cli.failOnFamilies.empty())
    return r.hasAtOrAbove(cli.failOn);
  for (const analysis::Diagnostic& d : r.diagnostics()) {
    for (const std::string& id : cli.failOnRules)
      if (d.rule == id) return true;
    for (const std::string& fam : cli.failOnFamilies)
      if (util::startsWith(d.rule, fam)) return true;
  }
  return false;
}

std::string readFileOrDie(const std::string& path) {
  if (path == "-") {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) die("cannot open '" + path + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The first keyword on the first non-comment line decides the format.
std::string sniffFirstWord(const std::string& text) {
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = util::splitWs(line);
    if (tokens.empty()) continue;
    return tokens[0];
  }
  return "";
}

dfg::Dfg compileBehavioral(const std::string& text) {
  lang::Compiled c = lang::compile(text);
  if (c.hasLoops()) {
    // Fold loops with MFS as the body scheduler.
    return dfg::foldLoopNest(c.nest, [](const dfg::Dfg& body, int cs) {
      core::MfsOptions o;
      o.constraints.timeSteps = cs;
      const auto r = core::runMfs(body, o);
      if (!r.feasible) throw std::runtime_error("loop body: " + r.error);
      return r.steps;
    });
  }
  return std::move(c.nest.body);
}

/// `random:<topology>[,key=value...]` pseudo-paths synthesize a generated
/// workload instead of reading a file — the scale smoke tests drive the
/// full CLI on 10^5-op graphs without shipping megabyte design files.
/// Topologies: layered, conv, lstm, transformer. Keys: ops, seed, width,
/// inputs, mul, twocycle (percent of two-cycle muls).
dfg::Dfg makeRandomDesign(const std::string& spec) {
  workloads::RandomDfgOptions o;
  const auto parts = util::split(spec.substr(7), ',');
  if (parts.empty() || parts[0].empty())
    die("random: spec needs a topology (layered|conv|lstm|transformer)");
  if (parts[0] == "layered") o.topology = workloads::DfgTopology::Layered;
  else if (parts[0] == "conv") o.topology = workloads::DfgTopology::Conv;
  else if (parts[0] == "lstm") o.topology = workloads::DfgTopology::Lstm;
  else if (parts[0] == "transformer")
    o.topology = workloads::DfgTopology::Transformer;
  else
    die("unknown random topology '" + parts[0] + "'");
  o.numOps = 1000;
  o.layerWidth = 32;
  o.numInputs = 8;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const auto eq = parts[i].find('=');
    if (eq == std::string::npos)
      die("random: option '" + parts[i] + "' is not key=value");
    const std::string key = parts[i].substr(0, eq);
    const int val = std::atoi(parts[i].c_str() + eq + 1);
    if (val <= 0 && key != "mul" && key != "twocycle")
      die("random: option '" + parts[i] + "' needs a positive value");
    if (key == "ops") o.numOps = val;
    else if (key == "seed") o.seed = static_cast<std::uint32_t>(val);
    else if (key == "width") o.layerWidth = val;
    else if (key == "inputs") o.numInputs = val;
    else if (key == "mul") o.mulPercent = val;
    else if (key == "twocycle") o.twoCyclePercent = val;
    else die("unknown random: option '" + key + "'");
  }
  return workloads::randomDfg(o);
}

dfg::Dfg loadDesign(const std::string& path) {
  const trace::Span span("parse");
  if (path.rfind("random:", 0) == 0) return makeRandomDesign(path);
  const std::string text = readFileOrDie(path);
  if (sniffFirstWord(text) == "design") return compileBehavioral(text);
  return dfg::parse(text);
}

/// Front-line check every command runs after loading a design: lint the DFG
/// and refuse to schedule/synthesize on errors. Warnings go to stderr.
void preflightLint(const dfg::Dfg& g) {
  const trace::Span span("preflight-lint");
  const analysis::LintReport r = analysis::lintDfg(g);
  if (r.empty()) return;
  std::fprintf(stderr, "%s", r.renderText().c_str());
  if (r.hasErrors())
    die(util::format("design '%s' fails lint with %zu error(s)",
                     g.name().c_str(), r.count(analysis::Severity::Error)));
}

std::string fuSummary(const std::map<dfg::FuType, int>& fus) {
  std::vector<std::string> parts;
  for (const auto& [t, n] : fus)
    parts.push_back(util::format("%d %s", n, std::string(dfg::fuTypeName(t)).c_str()));
  return util::join(parts, ", ");
}

int runSchedule(const Cli& cli, const dfg::Dfg& g) {
  core::MfsOptions o;
  o.constraints = cli.constraints;
  o.constraints.timeSteps = cli.steps;
  o.mode = cli.mode;
  o.priorityRule = cli.priority;
  const auto r = cache::cachedRunMfs(g, o);
  if (!r.feasible) die("MFS failed: " + r.error);
  const auto bad = sched::verifySchedule(r.schedule, o.constraints);
  std::printf("%s", r.schedule.toString().c_str());
  std::printf("FU allocation: %s\n", fuSummary(r.fuCount).c_str());
  std::printf("verification: %s\n",
              bad.empty() ? "clean" : bad.front().c_str());
  if (cli.emitReport)
    std::printf("\n%s", sched::analyzeSchedule(r.schedule).toString().c_str());
  if (cli.emitSlack) {
    std::string err;
    const auto slack = sched::analyzeSlack(r.schedule, o.constraints, &err);
    if (!slack) die("slack analysis failed: " + err);
    std::printf("\n%s", slack->toString(g).c_str());
  }
  if (cli.emitDot) std::printf("\n%s", dfg::toDot(g, r.schedule.stepMap()).c_str());
  return bad.empty() ? 0 : 1;
}

celllib::CellLibrary loadLibrary(const Cli& cli) {
  if (cli.libraryPath.empty())
    return celllib::ncrLike(
        {.pipelinedMultiplier =
             cli.constraints.pipelinedFus.count(dfg::FuType::Multiplier) > 0});
  std::ifstream in(cli.libraryPath);
  if (!in) die("cannot open library '" + cli.libraryPath + "'");
  std::stringstream ss;
  ss << in.rdbuf();
  return celllib::parseLibrary(ss.str());
}

int runSynth(const Cli& cli, const dfg::Dfg& g) {
  const celllib::CellLibrary lib = loadLibrary(cli);
  core::MfsaOptions o;
  o.constraints = cli.constraints;
  o.constraints.timeSteps = cli.steps;
  o.style = cli.style;
  o.weights = cli.weights;
  o.priorityRule = cli.priority;
  const auto r = cache::cachedRunMfsa(g, lib, o);
  if (!r.feasible) die("MFSA failed: " + r.error);
  const auto bad = rtl::verifyDatapath(r.datapath, o.constraints, cli.style);

  std::printf("%s", r.datapath.schedule.toString().c_str());
  std::printf("ALUs: %s\n%s\nverification: %s\n",
              r.datapath.aluSummary().c_str(), r.cost.toString().c_str(),
              bad.empty() ? "clean" : bad.front().c_str());

  const auto fsm = rtl::buildController(r.datapath);
  bool auditFailed = false;
  if (cli.doAudit) {
    const auto rom = rtl::buildMicrocode(r.datapath, fsm);
    const analysis::audit::AuditResult audit = analysis::audit::auditDesign(
        r.datapath, fsm, rom, {cli.jobs > 0 ? cli.jobs : 1});
    std::printf("%s\n", analysis::audit::renderAuditSummary(audit).c_str());
    if (!audit.clean()) {
      std::printf("%s", audit.report.renderText().c_str());
      auditFailed = failsPolicy(cli, audit.report);
    }
  }
  bool rangeFailed = false;
  if (cli.doRange) {
    const auto rom = rtl::buildMicrocode(r.datapath, fsm);
    analysis::range::RangeOptions ro;
    ro.jobs = cli.jobs > 0 ? cli.jobs : 1;
    const analysis::range::RangeResult ranges =
        analysis::range::analyzeDesignRanges(r.datapath, fsm, rom, ro);
    std::printf("%s\n", analysis::range::renderRangeSummary(ranges).c_str());
    if (!ranges.clean()) {
      std::printf("%s", ranges.report.renderText().c_str());
      rangeFailed = failsPolicy(cli, ranges.report);
    }
  }
  bool proveFailed = false;
  if (cli.doProve) {
    const auto rom = rtl::buildMicrocode(r.datapath, fsm);
    const analysis::LintReport proof =
        analysis::proveDatapath(r.datapath, fsm, rom);
    if (proof.empty()) {
      std::printf("translation validation: PROVED\n");
    } else {
      std::printf("translation validation: REFUTED\n%s",
                  proof.renderText().c_str());
      proveFailed = failsPolicy(cli, proof);
    }
  }
  bool timingFailed = false;
  if (cli.emitTiming) {
    analysis::timing::TimingOptions to;
    to.clockNs = cli.constraints.clockNs;
    to.clockSet = cli.clockSet;
    const auto sta = analysis::timing::analyzeTiming(r.datapath, to);
    std::printf("\n%s", sta.toString(g).c_str());
    if (!sta.diagnostics.empty()) {
      std::printf("%s", sta.diagnostics.renderText().c_str());
      timingFailed = failsPolicy(cli, sta.diagnostics);
    }
  }
  if (cli.emitReport)
    std::printf("\n%s", sched::analyzeSchedule(r.datapath.schedule).toString().c_str());
  if (cli.emitController) std::printf("\n%s", fsm.toString(g).c_str());
  if (cli.emitMicrocode)
    std::printf("\n%s", rtl::buildMicrocode(r.datapath, fsm).toString().c_str());
  if (cli.emitTestability)
    std::printf("\ntestability: %s\n",
                rtl::analyzeTestability(r.datapath).toString().c_str());
  if (cli.emitVerilog) std::printf("\n%s", rtl::toVerilog(r.datapath, fsm).c_str());
  if (cli.emitTestbench)
    std::printf("\n%s", rtl::toTestbench(r.datapath, fsm, cli.simInputs).c_str());
  if (cli.emitRtlDot) std::printf("\n%s", rtl::toDot(r.datapath).c_str());
  if (cli.emitDot)
    std::printf("\n%s", dfg::toDot(g, r.datapath.schedule.stepMap()).c_str());

  if (cli.doSim) {
    sim::SimTrace trace;
    const auto rtlOut = sim::simulateRtl(r.datapath, fsm, cli.simInputs, 16,
                                         cli.vcdPath.empty() ? nullptr : &trace);
    if (!rtlOut.ok) die("RTL simulation failed: " + rtlOut.error);
    if (!cli.vcdPath.empty()) {
      std::ofstream vcd(cli.vcdPath);
      if (!vcd) die("cannot write '" + cli.vcdPath + "'");
      vcd << sim::toVcd(trace, 16, g.name());
      std::printf("\nwrote waveform to %s\n", cli.vcdPath.c_str());
    }
    const auto ref = sim::evalDfg(g, cli.simInputs);
    if (!ref.ok) die("reference evaluation failed: " + ref.error);
    std::printf("\nsimulation (RTL vs behavioral reference):\n");
    bool allMatch = true;
    for (const auto& [name, value] : ref.outputs) {
      const sim::Word got = rtlOut.outputs.at(name);
      const bool match = got == value;
      allMatch = allMatch && match;
      std::printf("  %-12s = %llu (%s)\n", name.c_str(),
                  static_cast<unsigned long long>(got),
                  match ? "matches reference" : "MISMATCH");
    }
    if (!allMatch) return 1;
  }
  return bad.empty() && !auditFailed && !rangeFailed && !proveFailed &&
                 !timingFailed
             ? 0
             : 1;
}

/// Run the dataflow passes and (unless --no-timing) a schedule + datapath +
/// STA round, reporting OPT/TIM diagnostics. With --fix the rewritten design
/// goes to stdout and the diagnostics to stderr, so the fixed .dfg can be
/// piped straight back into the flow.
int runAnalyze(const Cli& cli, const dfg::Dfg& g) {
  analysis::AnalyzeOptions opts;
  opts.runTiming = !cli.noTiming;
  opts.steps = cli.steps;
  opts.constraints = cli.constraints;
  opts.clockSet = cli.clockSet;
  const celllib::CellLibrary lib = loadLibrary(cli);
  const analysis::AnalyzeResult r = analysis::analyzeDesign(g, lib, opts);

  if (cli.doFix) {
    const dfg::Dfg fixed = analysis::dataflow::applyFixes(g, r.dataflow);
    if (const auto err = fixed.validate())
      die("analyze --fix produced an invalid graph: " + *err);
    std::fprintf(stderr, "%s", r.report.renderText().c_str());
    std::printf("%s", dfg::serialize(fixed).c_str());
    return 0;
  }
  if (cli.jsonOut) {
    // Wrapper document: the schema-2 lint report plus the slack witness the
    // tune loop consumes; "slack" is null when the backing schedule failed.
    std::string lint = r.report.renderJson(g.name());
    while (!lint.empty() && lint.back() == '\n') lint.pop_back();
    std::printf("{\"schema\": 1,\n\"lint\": %s,\n\"slack\": %s\n}\n",
                lint.c_str(),
                r.slackRan ? r.slack.renderJson(g).c_str() : "null");
  } else
    std::printf("design '%s': %zu nodes, %zu operations\n%s",
                g.name().c_str(), g.size(), g.operations().size(),
                r.renderText(g).c_str());
  return failsPolicy(cli, r.report) ? 1 : 0;
}

/// Feedback-guided iterative re-scheduling: criticality analysis over the
/// STA findings seeds a cone extraction, the cone is re-scheduled under
/// tightened constraints, stitched back under the translation validator's
/// gate, and the loop repeats until the clock is met or the budget is spent.
/// Exit status 0 iff the final schedule meets the clock.
int runTune(const Cli& cli, const dfg::Dfg& g) {
  if (!cli.clockSet) die("tune needs --clock (the period to converge to)");
  const celllib::CellLibrary lib = loadLibrary(cli);

  analysis::criticality::TuneOptions opt;
  opt.constraints = cli.constraints;
  // Chaining is the gap tune exists to close (claimed chain delays vs the
  // physical route); the command implies it.
  opt.constraints.allowChaining = true;
  opt.constraints.timeSteps = cli.steps;
  opt.clockSet = true;
  opt.budget = cli.budget;
  opt.hops = cli.hops;
  opt.jobs = cli.jobs > 0
                 ? cli.jobs
                 : static_cast<int>(
                       std::max(1u, std::thread::hardware_concurrency()));

  const analysis::criticality::TuneResult r =
      analysis::criticality::tuneDesign(g, lib, opt);
  if (cli.jsonOut)
    std::printf("%s", r.renderJson(g).c_str());
  else
    std::printf("%s", r.renderText(g).c_str());
  if (cli.emitDot)
    std::printf("\n%s", dfg::toDot(g, r.schedule.stepMap()).c_str());
  return r.converged ? 0 : 1;
}

/// Sweep MFSA configurations across worker threads and report the Pareto
/// frontier of (control steps, total area). The frontier — and the JSON
/// rendering — is identical for every --jobs value; only wall time changes.
int runExplore(const Cli& cli, const dfg::Dfg& g) {
  const celllib::CellLibrary lib = loadLibrary(cli);
  explore::SweepSpec spec = explore::SweepSpec::defaults();
  spec.base = cli.constraints;
  if (cli.steps > 0) spec.steps = {cli.steps};
  const int jobs =
      cli.jobs > 0
          ? cli.jobs
          : std::max(1u, std::thread::hardware_concurrency());

  const explore::ExploreResult r = explore::explore(g, lib, spec, jobs);
  if (cli.jsonOut) {
    std::printf("%s", explore::toJson(r).c_str());
    return r.feasibleCount > 0 ? 0 : 1;
  }

  std::printf("design '%s': %d configurations, %d feasible (critical path %d"
              " steps, %d jobs)\n\n",
              r.design.c_str(), static_cast<int>(r.candidates.size()),
              r.feasibleCount, r.criticalSteps, jobs);
  std::printf("Pareto frontier (steps vs total area):\n");
  std::printf("  %5s  %10s  %8s  %8s  %8s  %s\n", "steps", "total", "alu",
              "reg", "mux", "configuration");
  for (int idx : r.frontier) {
    const explore::Candidate& c =
        r.candidates[static_cast<std::size_t>(idx)];
    std::printf("  %5d  %10.1f  %8.1f  %8.1f  %8.1f  w=[%g,%g,%g,%g] %s %s %s\n",
                c.steps, c.cost.total, c.cost.aluArea, c.cost.regArea,
                c.cost.muxArea, c.weights.time, c.weights.alu, c.weights.mux,
                c.weights.reg,
                std::string(explore::priorityRuleName(c.priorityRule)).c_str(),
                std::string(explore::interconnectName(c.interconnect)).c_str(),
                std::string(explore::designStyleName(c.style)).c_str());
  }
  if (r.frontier.empty())
    std::printf("  (no feasible configuration)\n");
  return r.feasibleCount > 0 ? 0 : 1;
}

/// Synthesize the design with the CLI's scheduler and assemble the full
/// datapath + controller + ROM triple the validator and the audit consume.
analysis::BoundDesign synthesizeBound(const Cli& cli, const dfg::Dfg& g,
                                      const celllib::CellLibrary& lib) {
  sched::Constraints constraints = cli.constraints;
  constraints.timeSteps = cli.steps;
  auto fromDatapath = [](rtl::Datapath d) {
    analysis::BoundDesign b;
    b.datapath = std::move(d);
    b.fsm = rtl::buildController(b.datapath);
    b.rom = rtl::buildMicrocode(b.datapath, b.fsm);
    return b;
  };
  auto fromSchedule = [&](const sched::Schedule& s) {
    return fromDatapath(
        rtl::buildDatapath(g, lib, s, rtl::bindByColumns(g, lib, s)));
  };
  if (cli.schedulerName == "mfsa") {
    core::MfsaOptions o;
    o.constraints = constraints;
    o.style = cli.style;
    o.weights = cli.weights;
    o.priorityRule = cli.priority;
    const auto r = cache::cachedRunMfsa(g, lib, o);
    if (!r.feasible) die("MFSA failed: " + r.error);
    return fromDatapath(r.datapath);
  }
  if (cli.schedulerName == "mfs") {
    core::MfsOptions o;
    o.constraints = constraints;
    o.mode = cli.mode;
    o.priorityRule = cli.priority;
    const auto r = cache::cachedRunMfs(g, o);
    if (!r.feasible) die("MFS failed: " + r.error);
    return fromSchedule(r.schedule);
  }
  if (cli.schedulerName == "asap") {
    const auto r = baseline::runAsap(g, constraints);
    if (!r.feasible) die("ASAP failed: " + r.error);
    return fromSchedule(r.schedule);
  }
  if (cli.schedulerName == "list") {
    const auto r = baseline::runListScheduling(g, constraints);
    if (!r.feasible) die("list scheduling failed: " + r.error);
    return fromSchedule(r.schedule);
  }
  const auto r = baseline::runForceDirected(g, constraints);  // fds
  if (!r.feasible) die("FDS failed: " + r.error);
  return fromSchedule(r.schedule);
}

/// Synthesize (or load a .bind design) and run the translation validator.
/// The reference-free audit runs first as a fast path: audit errors are
/// structural defects symbolic execution would only rediscover more slowly
/// (or miss entirely), so they short-circuit the prover.
int runProve(const Cli& cli, const dfg::Dfg& g) {
  const celllib::CellLibrary lib = loadLibrary(cli);
  analysis::LintReport report;
  std::string how;

  std::optional<analysis::BoundDesign> bound;
  if (!cli.bindPath.empty()) {
    how = "bind file " + cli.bindPath;
    std::string err;
    bound =
        analysis::parseBindDesign(g, lib, readFileOrDie(cli.bindPath), &err);
    if (!bound) {
      analysis::Diagnostic d;
      d.rule = std::string(analysis::kEqvParseFailure);
      d.severity = analysis::Severity::Error;
      d.entity = analysis::EntityKind::Design;
      d.message = err;
      report.add(std::move(d));
    }
  } else {
    how = "scheduler " + cli.schedulerName;
    bound = synthesizeBound(cli, g, lib);
  }

  if (bound) {
    const analysis::audit::AuditResult audit = analysis::audit::auditDesign(
        bound->datapath, bound->fsm, bound->rom,
        {cli.jobs > 0 ? cli.jobs : 1});
    if (audit.report.hasErrors()) {
      how += " (audit fast path)";
      report = audit.report;
    } else {
      report =
          analysis::proveDatapath(bound->datapath, bound->fsm, bound->rom);
    }
  }

  if (cli.jsonOut) {
    std::printf("%s", report.renderJson(g.name()).c_str());
  } else {
    std::printf("translation validation of '%s' via %s: %s\n",
                g.name().c_str(), how.c_str(),
                report.empty() ? "PROVED" : "REFUTED");
    if (!report.empty()) std::printf("%s", report.renderText().c_str());
  }
  return failsPolicy(cli, report) ? 1 : 0;
}

/// Reference-free RTL audit of a synthesized (or .bind-loaded) design:
/// symbolic FSM reachability plus the AUD safety analyses.
int runAudit(const Cli& cli, const dfg::Dfg& g) {
  const celllib::CellLibrary lib = loadLibrary(cli);
  std::string how;

  std::optional<analysis::BoundDesign> bound;
  if (!cli.bindPath.empty()) {
    how = "bind file " + cli.bindPath;
    std::string err;
    bound =
        analysis::parseBindDesign(g, lib, readFileOrDie(cli.bindPath), &err);
    if (!bound) die("cannot parse '" + cli.bindPath + "': " + err);
  } else {
    how = "scheduler " + cli.schedulerName;
    bound = synthesizeBound(cli, g, lib);
  }

  const int jobs = cli.jobs > 0 ? cli.jobs : 1;
  analysis::audit::AuditResult r;
  std::string rangeSummary;
  if (cli.withRanges) {
    // Refine reachability with the interval analysis first: AUD findings
    // that only live on value-dead paths disappear, and the WID width
    // proofs ride along in the combined report.
    analysis::range::RangeOptions ro;
    ro.jobs = jobs;
    ro.asserts = bound->asserts;
    const analysis::range::RangeResult rr = analysis::range::analyzeDesignRanges(
        bound->datapath, bound->fsm, bound->rom, ro);
    analysis::audit::AuditOptions ao;
    ao.jobs = jobs;
    r = analysis::range::auditRefined(rr, bound->datapath, bound->rom, ao);
    r.report.merge(rr.report);
    rangeSummary = analysis::range::renderRangeSummary(rr);
    how += " (range-refined)";
  } else {
    analysis::audit::AuditOptions ao;
    ao.jobs = jobs;
    r = analysis::audit::auditDesign(bound->datapath, bound->fsm, bound->rom,
                                     ao);
  }

  if (cli.jsonOut) {
    std::printf("%s", analysis::audit::renderAuditJson(r, g).c_str());
  } else {
    std::printf("audit of '%s' via %s: %s\n", g.name().c_str(), how.c_str(),
                r.clean() ? "CLEAN" : "FINDINGS");
    std::printf("%s\n", analysis::audit::renderAuditSummary(r).c_str());
    if (!rangeSummary.empty()) std::printf("%s\n", rangeSummary.c_str());
    if (!r.clean()) std::printf("%s", r.report.renderText().c_str());
  }
  return failsPolicy(cli, r.report) ? 1 : 0;
}

/// Interval range analysis of a synthesized (or .bind-loaded) design:
/// per-state width/overflow proofs (WID) over the refined step graph, with
/// `.bind` assert statements checked as WID005 obligations.
int runRange(const Cli& cli, const dfg::Dfg& g) {
  const celllib::CellLibrary lib = loadLibrary(cli);
  std::string how;

  std::optional<analysis::BoundDesign> bound;
  if (!cli.bindPath.empty()) {
    how = "bind file " + cli.bindPath;
    std::string err;
    bound =
        analysis::parseBindDesign(g, lib, readFileOrDie(cli.bindPath), &err);
    if (!bound) die("cannot parse '" + cli.bindPath + "': " + err);
  } else {
    how = "scheduler " + cli.schedulerName;
    bound = synthesizeBound(cli, g, lib);
  }

  analysis::range::RangeOptions ro;
  ro.jobs = cli.jobs > 0 ? cli.jobs : 1;
  ro.asserts = bound->asserts;
  const analysis::range::RangeResult r = analysis::range::analyzeDesignRanges(
      bound->datapath, bound->fsm, bound->rom, ro);

  if (cli.jsonOut) {
    std::printf("%s", analysis::range::renderRangeJson(r, g).c_str());
  } else {
    std::printf("range analysis of '%s' via %s: %s\n", g.name().c_str(),
                how.c_str(), r.clean() ? "CLEAN" : "FINDINGS");
    std::printf("%s\n", analysis::range::renderRangeSummary(r).c_str());
    if (!r.clean()) std::printf("%s", r.report.renderText().c_str());
  }
  return failsPolicy(cli, r.report) ? 1 : 0;
}

int runLint(const Cli& cli) {
  const std::string text = readFileOrDie(cli.file);
  analysis::LintReport report;
  dfg::Dfg g;
  bool haveGraph = false;

  auto parseFailure = [&](std::string_view rule, const std::string& msg,
                          int line) {
    analysis::Diagnostic d;
    d.rule = std::string(rule);
    d.severity = analysis::Severity::Error;
    d.entity = analysis::EntityKind::Design;
    d.loc.line = line;
    d.message = msg;
    report.add(std::move(d));
  };

  if (sniffFirstWord(text) == "design") {
    // The behavioral front-end has no lenient mode; a compile failure
    // becomes a single parse-failure diagnostic.
    try {
      g = compileBehavioral(text);
      haveGraph = true;
    } catch (const std::exception& e) {
      parseFailure(analysis::kDfgParseFailure, e.what(), -1);
    }
  } else {
    std::vector<dfg::ParseIssue> issues;
    g = dfg::parseLenient(text, issues);
    haveGraph = true;
    for (const dfg::ParseIssue& issue : issues)
      parseFailure(issue.unknownSignal ? analysis::kDfgDanglingInput
                                       : analysis::kDfgParseFailure,
                   issue.message, issue.line > 0 ? issue.line : -1);
  }

  if (haveGraph) {
    report.merge(analysis::lintDfg(g));
    // The OPT family rides along: optimization opportunities are lint-grade
    // findings (Notes) once the graph is structurally sound.
    if (!report.hasErrors())
      report.merge(analysis::dataflow::lintDataflow(g).report);
  }

  if (!cli.schedulePath.empty()) {
    if (!haveGraph) {
      die("cannot lint schedule '" + cli.schedulePath + "': design failed to parse");
    } else {
      std::string err;
      const auto sched =
          sched::parseSchedule(g, readFileOrDie(cli.schedulePath), &err);
      if (!sched)
        parseFailure(analysis::kSchedParseFailure, err, -1);
      else
        report.merge(analysis::lintSchedule(*sched, cli.constraints));
    }
  }

  if (!cli.libraryPath.empty()) {
    try {
      const celllib::CellLibrary lib =
          celllib::parseLibrary(readFileOrDie(cli.libraryPath));
      std::set<dfg::FuType> needed;
      if (haveGraph)
        for (const dfg::Node& n : g.nodes())
          if (dfg::isSchedulable(n.kind)) needed.insert(dfg::fuTypeOf(n.kind));
      report.merge(analysis::lintLibrary(lib, needed));
    } catch (const celllib::LibraryError& e) {
      parseFailure(analysis::kLibParseFailure, e.what(), -1);
    }
  }

  if (cli.jsonOut)
    std::printf("%s", report.renderJson(g.name()).c_str());
  else
    std::printf("%s", report.renderText().c_str());
  return failsPolicy(cli, report) ? 1 : 0;
}

/// schedule/synth in time-constrained mode without --steps: default the time
/// constraint to the design's critical path (probed with the user's chaining
/// and clock settings) instead of refusing to run.
void defaultStepsToCriticalPath(Cli& cli, const dfg::Dfg& g) {
  sched::Constraints probe;
  probe.allowChaining = cli.constraints.allowChaining;
  probe.clockNs = cli.constraints.clockNs;
  std::string err;
  const auto tf = sched::computeTimeFrames(g, probe, &err);
  if (!tf) die("cannot default --steps: " + err);
  cli.steps = tf->criticalSteps();
  std::fprintf(stderr,
               "mframe: no --steps given; using the critical path (%d)\n",
               cli.steps);
}

int runCommand(Cli& cli) {
  if (cli.command == "lint") return runLint(cli);
  if (cli.command == "prove" || cli.command == "audit" ||
      cli.command == "range") {
    // ASAP and list scheduling pace themselves; a .bind file carries its
    // own step count. Everything else needs the time constraint.
    if (cli.steps <= 0 && cli.bindPath.empty() &&
        cli.schedulerName != "asap" && cli.schedulerName != "list")
      die("--steps is required for --scheduler " + cli.schedulerName);
    const dfg::Dfg g = loadDesign(cli.file);
    preflightLint(g);
    return cli.command == "prove"   ? runProve(cli, g)
           : cli.command == "audit" ? runAudit(cli, g)
                                    : runRange(cli, g);
  }
  if (cli.command == "explore") {
    const dfg::Dfg g = loadDesign(cli.file);
    preflightLint(g);
    return runExplore(cli, g);
  }
  if (cli.command == "analyze") {
    const dfg::Dfg g = loadDesign(cli.file);
    preflightLint(g);
    return runAnalyze(cli, g);
  }
  if (cli.command == "tune") {
    const dfg::Dfg g = loadDesign(cli.file);
    preflightLint(g);
    return runTune(cli, g);
  }
  const dfg::Dfg g = loadDesign(cli.file);
  preflightLint(g);
  if (cli.steps <= 0 && cli.mode == core::MfsLiapunov::Mode::TimeConstrained)
    defaultStepsToCriticalPath(cli, g);
  std::printf("design '%s': %zu nodes, %zu operations\n\n",
              g.name().c_str(), g.size(), g.operations().size());
  if (cli.emitStats)
    std::printf("%s\n", dfg::computeStats(g).toString().c_str());
  return cli.command == "schedule" ? runSchedule(cli, g) : runSynth(cli, g);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli = parseArgs(argc, argv);
  const bool wantTrace = !cli.tracePath.empty();
  if (wantTrace || cli.metrics || cli.cacheStats) trace::enableCounters(true);
  if (wantTrace) trace::beginTracing();

  // The cache outlives runCommand (results may be stored as the command
  // unwinds) and is installed process-wide so every synthesis path — the
  // explorer's worker threads included — goes through it.
  std::unique_ptr<cache::SynthCache> synthCache;
  if (!cli.cachePath.empty()) {
    try {
      synthCache = std::make_unique<cache::SynthCache>(cli.cachePath);
    } catch (const std::exception& e) {
      die(e.what());
    }
    cache::setActiveCache(synthCache.get());
  }

  int rc = 2;
  try {
    rc = runCommand(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mframe: %s\n", e.what());
  }
  cache::setActiveCache(nullptr);

  // Stats go to stderr so a warm run's stdout stays byte-identical to the
  // cold run that populated the cache.
  if (cli.cacheStats)
    std::fprintf(
        stderr,
        "mframe: cache '%s': %llu hits, %llu misses (%llu incremental), "
        "%llu stores, %llu invalidations\n",
        cli.cachePath.c_str(),
        static_cast<unsigned long long>(
            trace::counterValue(trace::Counter::CacheHits)),
        static_cast<unsigned long long>(
            trace::counterValue(trace::Counter::CacheMisses)),
        static_cast<unsigned long long>(
            trace::counterValue(trace::Counter::CacheIncrementalHits)),
        static_cast<unsigned long long>(
            trace::counterValue(trace::Counter::CacheStores)),
        static_cast<unsigned long long>(
            trace::counterValue(trace::Counter::CacheInvalidations)));

  // Flush instrumentation even when the command failed: a trace of the run
  // that died is exactly what the investigation needs. (die() exits directly
  // and skips this — argument and I/O errors have nothing worth tracing.)
  if (wantTrace) {
    trace::endTracing();
    if (!trace::writeTrace(cli.tracePath)) {
      std::fprintf(stderr, "mframe: cannot write trace '%s'\n",
                   cli.tracePath.c_str());
      if (rc == 0) rc = 2;
    }
  }
  if (cli.metrics) {
    if (cli.metricsJsonOut)
      std::printf("%s\n", trace::metricsJson().c_str());
    else
      std::printf("%s", trace::metricsText().c_str());
  }
  return rc;
}
