// Reproduction of Figure 2: (a) the ASAP/ALAP time frames and (b) the
// Primary / Redundant / Forbidden / Move frames of a typical operation r
// with two already-scheduled predecessors K1 and K2 — rendered from a live
// MFS run on the HAL diffeq benchmark instead of a hand-drawn diagram.
#include <cstdio>

#include "core/frames.h"
#include "core/grid.h"
#include "core/mfs.h"
#include "sched/timeframes.h"
#include "util/grid_render.h"
#include "util/strings.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace mframe;
  const dfg::Dfg g = workloads::diffeq();
  sched::Constraints c;
  c.timeSteps = 5;
  const auto tf = *computeTimeFrames(g, c);

  // (a) ASAP / ALAP table.
  std::printf("Figure 2(a) — ASAP and ALAP schedules define each "
              "operation's time frame (diffeq, cs = 5):\n\n");
  std::printf("  %-6s %-5s %-5s %-8s\n", "op", "ASAP", "ALAP", "mobility");
  for (dfg::NodeId id : g.operations())
    std::printf("  %-6s %-5d %-5d %-8d\n", g.node(id).name.c_str(),
                tf.asap(id), tf.alap(id), tf.mobility(id));

  // (b) frames for operation r = m4 (two predecessors m1=K1 and m2=K2),
  // mid-schedule: place the two predecessors and one unrelated multiply
  // first, exactly the situation of the figure.
  const dfg::NodeId k1 = g.findByName("m1");
  const dfg::NodeId k2 = g.findByName("m2");
  const dfg::NodeId other = g.findByName("m3");
  const dfg::NodeId r = g.findByName("m4");

  sched::Schedule s(g);
  s.setNumSteps(5);
  core::ColumnOccupancy occ(g, c);
  core::FrameCalculator fc(g, c, tf);
  auto put = [&](dfg::NodeId id, int step, int col) {
    occ.place(id, col, step);
    s.place(id, step, col);
    fc.recordPlacement(s, id, step);
  };
  put(k1, 1, 1);  // K1
  put(k2, 2, 2);  // K2
  put(other, 2, 1);  // an occupied position, the figure's "X"

  const int currentCols = 2;
  const int maxCols = 3;
  const auto frames = fc.compute(s, occ, r, currentCols, maxCols);

  util::GridRender grid(5, maxCols);
  grid.setTitle("Figure 2(b) — frames for operation r (= m4) of type '*'");
  grid.setAxisNames("FU instance", "control step");
  grid.setLabel(s.stepOf(k1), s.columnOf(k1), "K1");
  grid.setLabel(s.stepOf(k2), s.columnOf(k2), "K2");
  grid.setLabel(s.stepOf(other), s.columnOf(other), "X");

  for (int step = frames.pfStepLo; step <= frames.pfStepHi; ++step)
    for (int col = frames.pfColLo; col <= frames.pfColHi; ++col)
      grid.addMark(step, col, 'P');
  for (int step = frames.pfStepLo; step <= frames.pfStepHi; ++step)
    for (int col = frames.rfColLo; col <= frames.pfColHi; ++col)
      grid.addMark(step, col, 'R');
  for (int step = 1; step < frames.ffBelowStep; ++step)
    for (int col = 1; col <= maxCols; ++col) grid.addMark(step, col, 'F');
  for (const auto& cell : frames.moveFrame)
    grid.addMark(cell.step, cell.column, 'M');

  // The MFS choice: minimum Liapunov value inside MF.
  const core::MfsLiapunov energy(core::MfsLiapunov::Mode::TimeConstrained,
                                 maxCols, 5);
  const sched::Placement* bestCell = nullptr;
  for (const auto& cell : frames.moveFrame)
    if (!bestCell ||
        energy.value(cell.column, cell.step) <
            energy.value(bestCell->column, bestCell->step))
      bestCell = &cell;
  if (bestCell) grid.setLabel(bestCell->step, bestCell->column, "r*");

  grid.addLegend("P = primary frame [ASAP,ALAP] x [1,max_j]");
  grid.addLegend(util::format(
      "R = redundant frame (columns >= current_j+1 = %d)", frames.rfColLo));
  grid.addLegend(util::format(
      "F = forbidden frame (steps <= %d, predecessors K1/K2)",
      frames.ffBelowStep - 1));
  grid.addLegend("M = move frame MF = PF - (RF + FF), minus occupied cells");
  grid.addLegend("K1, K2 = scheduled predecessors; X = occupied; r* = chosen");
  std::printf("\n%s", grid.render().c_str());

  if (bestCell)
    std::printf("\nMFS assigns r to (step %d, FU %d) — the move-frame cell "
                "with the smallest Liapunov value, as in the paper's "
                "example.\n",
                bestCell->step, bestCell->column);
  return 0;
}
