// Explorer benchmarks (google-benchmark): the full MFSA configuration sweep
// per paper design, and its thread scaling at --jobs 1/2/4/8. UseRealTime is
// essential — CPU time sums across workers and would hide the speedup.
#include <benchmark/benchmark.h>

#include "celllib/ncr_like.h"
#include "explore/explore.h"
#include "workloads/benchmarks.h"

namespace {

using namespace mframe;

explore::SweepSpec specFor(const workloads::BenchmarkCase& bc) {
  explore::SweepSpec spec = explore::SweepSpec::defaults();
  spec.base = bc.constraints;
  return spec;
}

void BM_ExploreSuite(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  const explore::SweepSpec spec = specFor(bc);
  for (auto _ : state) {
    const auto r = explore::explore(bc.graph, lib, spec, /*jobs=*/1);
    benchmark::DoNotOptimize(r.feasibleCount);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_ExploreSuite)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

// Thread scaling on the largest paper design: the frontier is identical for
// every jobs value; only the wall clock should move.
void BM_ExploreJobs(benchmark::State& state) {
  static const dfg::Dfg g = workloads::ewfLike();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  explore::SweepSpec spec = explore::SweepSpec::defaults();
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto r = explore::explore(g, lib, spec, jobs);
    benchmark::DoNotOptimize(r.feasibleCount);
  }
  state.SetLabel("ewf");
}
BENCHMARK(BM_ExploreJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
