// Tune-loop benchmarks (google-benchmark): the criticality pass alone, cone
// extraction, and the full feedback loop — criticality, cone re-scheduling,
// stitching, the prove gate — as the user pays for it in `mframe tune`.
#include <benchmark/benchmark.h>

#include "analysis/criticality/criticality.h"
#include "analysis/criticality/tune.h"
#include "analysis/timing/sta.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "dfg/transforms.h"
#include "rtl/datapath.h"
#include "sched/slack.h"
#include "sched/timeframes.h"
#include "workloads/benchmarks.h"

namespace {

using namespace mframe;

sched::Constraints tuneConstraints(double clockNs) {
  sched::Constraints c;
  c.allowChaining = true;
  c.clockNs = clockNs;
  return c;
}

// The criticality pass on a deliberately violating schedule: chain every
// paper design as aggressively as its claimed delays allow, then score.
void BM_CriticalityPass(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];

  core::MfsOptions mo;
  mo.constraints = tuneConstraints(200.0);
  // Same default as tuneDesign: the chaining-aware critical step count —
  // the most aggressive schedule the claimed delays promise.
  mo.constraints.timeSteps =
      sched::computeTimeFrames(bc.graph, mo.constraints)->criticalSteps();
  const core::MfsResult r = core::runMfs(bc.graph, mo);
  if (!r.feasible) {
    state.SkipWithError("infeasible baseline schedule");
    return;
  }
  const rtl::Datapath dp = rtl::buildDatapath(
      bc.graph, lib, r.schedule, rtl::bindByColumns(bc.graph, lib, r.schedule));
  analysis::timing::TimingOptions to;
  to.clockNs = 200.0;
  to.clockSet = true;
  const analysis::timing::TimingReport tr = analysis::timing::analyzeTiming(dp, to);
  const auto slack = sched::analyzeSlack(r.schedule, mo.constraints);

  analysis::criticality::CriticalityOptions co;
  co.clockNs = 200.0;
  for (auto _ : state) {
    const auto crit = analysis::criticality::analyzeCriticality(
        dp, tr, slack ? *slack : sched::SlackReport{}, nullptr, co);
    benchmark::DoNotOptimize(crit.engineVisits);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_CriticalityPass)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

// Cone extraction around the latest operations of each paper design.
void BM_ExtractCone(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  std::vector<dfg::NodeId> seeds;
  for (const auto& [id, ext] : bc.graph.outputs())
    if (dfg::isSchedulable(bc.graph.node(id).kind)) seeds.push_back(id);
  for (auto _ : state) {
    const dfg::ConeCut cut = dfg::extractCone(bc.graph, seeds, 2);
    benchmark::DoNotOptimize(cut.coneOps);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_ExtractCone)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

// End-to-end `mframe tune` on each paper design at a 200 ns clock.
void BM_TuneDesign(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  analysis::criticality::TuneOptions opt;
  opt.constraints = tuneConstraints(200.0);
  opt.budget = 4;
  opt.jobs = 1;
  for (auto _ : state) {
    const auto r = analysis::criticality::tuneDesign(bc.graph, lib, opt);
    benchmark::DoNotOptimize(r.worstSlackNs);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_TuneDesign)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
