// Ablation E — what balancing buys: FACET-style ASAP scheduling vs MFS at
// the same schedule length (total FU count and peak register pressure), the
// slack distribution of the balanced schedules, and the chained-design
// clock-period trade-off of Section 5.4.
#include <cstdio>

#include "baseline/asap_sched.h"
#include "core/mfs.h"
#include "sched/clock_explorer.h"
#include "sched/report.h"
#include "sched/slack.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

namespace {

using namespace mframe;

int totalFu(const std::map<dfg::FuType, int>& fus) {
  int total = 0;
  for (const auto& [t, n] : fus)
    if (t != dfg::FuType::LoopUnit) total += n;
  return total;
}

}  // namespace

int main() {
  util::Table t("ASAP vs MFS at the ASAP schedule length");
  t.setHeader({"design", "T", "ASAP FUs", "MFS FUs", "ASAP peak reg",
               "MFS peak reg", "critical ops", "mean slack"});
  for (const auto& bc : workloads::paperSuite()) {
    const auto asap = baseline::runAsap(bc.graph, bc.constraints);
    if (!asap.feasible) continue;
    core::MfsOptions o;
    o.constraints = bc.constraints;
    o.constraints.timeSteps = asap.steps;
    const auto mfs = core::runMfs(bc.graph, o);
    if (!mfs.feasible) continue;
    const auto asapRep = sched::analyzeSchedule(asap.schedule);
    const auto mfsRep = sched::analyzeSchedule(mfs.schedule);
    const auto slack = sched::analyzeSlack(mfs.schedule, o.constraints).value();
    t.addRow({bc.graph.name(), std::to_string(asap.steps),
              std::to_string(totalFu(asap.schedule.fuCount())),
              std::to_string(totalFu(mfs.fuCount)),
              std::to_string(asapRep.peakLive), std::to_string(mfsRep.peakLive),
              util::format("%d/%zu", slack.criticalCount, slack.ops.size()),
              util::format("%.2f", slack.meanTotalSlack)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Shape: at the same latency, the balanced schedule needs no "
              "more total FUs than ASAP (usually strictly fewer on the "
              "multiplication-heavy designs).\n\n");

  // Clock-period trade-off on the chained design (Section 5.4).
  util::Table ct("chained design: clock period vs steps (chaining on)");
  ct.setHeader({"clock ns", "steps", "latency ns", "FU mix"});
  for (const auto& p :
       sched::sweepClock(workloads::chained(), {40, 80, 120, 160, 240})) {
    if (!p.feasible) {
      ct.addRow({util::format("%.0f", p.clockNs), "infeasible"});
      continue;
    }
    std::string fus;
    for (const auto& [type, n] : p.fuCount)
      fus += std::to_string(n) + std::string(dfg::fuTypeSymbol(type)) + " ";
    ct.addRow({util::format("%.0f", p.clockNs), std::to_string(p.steps),
               util::format("%.0f", p.latencyNs), fus});
  }
  std::printf("%s\n", ct.render().c_str());
  std::printf("Longer control steps chain more dependent operations into a "
              "step (fewer steps) at the cost of clock period; end-to-end "
              "latency stays roughly constant — chaining trades control "
              "overhead against cycle time.\n");
  return 0;
}
