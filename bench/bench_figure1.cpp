// Reproduction of Figure 1: the 2-D placement table (FU instances of one
// type x control steps) with the present position O_i^p and next position
// O_i^n of an operation moving toward the equilibrium point, rendered from a
// live Liapunov evaluation rather than drawn by hand.
#include <cstdio>

#include "core/liapunov.h"
#include "util/grid_render.h"
#include "util/strings.h"

int main() {
  using namespace mframe;

  const int steps = 7;
  const int cols = 5;
  const core::MfsLiapunov v(core::MfsLiapunov::Mode::TimeConstrained,
                            /*columnBound=*/cols, /*stepBound=*/steps);

  // The paper's example: O_i currently at (x=4, y=6); a legal move must go
  // left and/or up (property 2 of the theorem). Pick the reachable cell with
  // the smallest Liapunov value as the next position.
  const int px = 4, py = 6;
  int nx = px, ny = py;
  double best = v.value(px, py);
  for (int y = 1; y <= py; ++y)
    for (int x = 1; x <= (y == py ? px - 1 : cols); ++x)
      if (v.value(x, y) < best) {
        best = v.value(x, y);
        nx = x;
        ny = y;
      }

  util::GridRender grid(steps, cols);
  grid.setTitle("Figure 1 — present (Oip) and next (Oin) position of an "
                "operation in the placement table");
  grid.setAxisNames("X (FU instances of one type)", "Y (control step)");
  grid.setLabel(py, px, "Oip");
  grid.setLabel(ny, nx, "Oin");
  grid.addLegend(util::format(
      "present position (x,y) = (%d,%d), V = %.0f", px, py, v.value(px, py)));
  grid.addLegend(util::format("next position    (x,y) = (%d,%d), V = %.0f  "
                              "(dx = %d, dy = %d)",
                              nx, ny, best, nx - px, ny - py));
  grid.addLegend("equilibrium point Xe = (0,0) lies above-left of the table");
  std::printf("%s\n", grid.render().c_str());

  // Show the monotone energy landscape along the trajectory.
  std::printf("Liapunov values along column 1 (time-constrained V = x + n*y):\n");
  for (int y = 1; y <= steps; ++y)
    std::printf("  step %d: V(1,%d) = %.0f\n", y, y, v.value(1, y));
  std::printf("\nEvery legal move (left/up) strictly decreases V — the "
              "discrete analogue of dE/dt < 0 in Liapunov's theorem.\n");
  return 0;
}
