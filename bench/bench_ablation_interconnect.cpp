// Ablation C' — interconnect style: the paper notes the Liapunov function
// can optimize "multiplexers (or buses)" (Section 4.1). Compare the
// mux-based interconnect MFSA builds against a shared-bus plan derived from
// the same schedule/binding, across the whole suite: few concurrent
// transfers favor buses, heavy sharing favors muxes.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "rtl/bus.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace mframe;
  const celllib::CellLibrary lib = celllib::ncrLike();

  util::Table t("Interconnect ablation: mux-based vs shared buses");
  t.setHeader({"design", "T", "MUXes", "MUX inputs", "mux um^2", "buses",
               "drivers", "bus um^2", "bus-aware MFSA", "cheaper"});
  for (const auto& bc : workloads::paperSuite()) {
    const int cs = bc.timeSweep.front();
    core::MfsaOptions o;
    o.constraints = bc.constraints;
    o.constraints.timeSteps = cs;
    const auto r = core::runMfsa(bc.graph, lib, o);
    if (!r.feasible) {
      t.addRow({bc.graph.name(), std::to_string(cs), "infeasible"});
      continue;
    }
    const auto fsm = rtl::buildController(r.datapath);
    const rtl::BusPlan bus = rtl::planBuses(r.datapath, fsm);

    // Bus-aware MFSA: the Liapunov f_MUX term prices bus wires directly, so
    // the allocator spreads transfers instead of sharing mux inputs.
    core::MfsaOptions ob = o;
    ob.interconnect = core::InterconnectStyle::Bus;
    const auto rb = core::runMfsa(bc.graph, lib, ob);

    t.addRow({bc.graph.name(), std::to_string(cs),
              std::to_string(r.cost.muxCount),
              std::to_string(r.cost.muxInputCount),
              util::format("%.0f", r.cost.muxArea),
              std::to_string(bus.busCount), std::to_string(bus.driverCount),
              util::format("%.0f", bus.totalCost),
              rb.feasible && rb.busPlan
                  ? util::format("%d buses / %.0f um^2",
                                 rb.busPlan->busCount, rb.busPlan->totalCost)
                  : "infeasible",
              bus.totalCost < r.cost.muxArea ? "bus" : "mux"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Interpretation: designs with few, wide muxes lean toward a "
              "handful of shared buses; sparse interconnect keeps the "
              "point-to-point mux structure.\n");
  return 0;
}
