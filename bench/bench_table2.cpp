// Reproduction of Table 2: "The result of MFSA algorithm" — for each of the
// six examples and both design styles: the allocated ALU set, total RTL cost
// (um^2, NCR-like library), register count, mux count and total mux inputs,
// plus the style-2 overhead the paper quotes as 2-11%. The sweep lives in
// workloads::runTable2 so the tests can assert its shape.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/table_runner.h"

int main() {
  using namespace mframe;
  std::printf(
      "Table 2 reproduction — MFSA simultaneous scheduling-allocation.\n"
      "Style 1 = unrestricted RTL; style 2 = no self-loop around ALUs "
      "(self-testable, SYNTEST).\nCosts come from the NCR-like substitute "
      "library (see DESIGN.md).\n\n");

  const celllib::CellLibrary lib = celllib::ncrLike();
  const auto rows = workloads::runTable2(workloads::paperSuite(), lib);

  util::Table t("MFSA results (paper Table 2)");
  t.setHeader({"ex", "design", "T", "style", "ALUs", "cost um^2", "REG", "MUX",
               "MUXin", "ms", "check"});
  double totalMs = 0.0;
  double style1Cost = 0.0;
  for (const auto& row : rows) {
    totalMs += row.milliseconds;
    if (row.style == 1 && !t.rowCount()) {
      // nothing — separators handled below
    }
    if (row.style == 1) style1Cost = row.cost.total;
    if (!row.feasible) {
      t.addRow({row.exampleId, row.design, std::to_string(row.timeSteps),
                std::to_string(row.style), "infeasible"});
      continue;
    }
    std::string note = row.verified ? "ok" : "INVALID";
    if (row.style == 2 && style1Cost > 0.0)
      note += util::format(" (%+.1f%%)",
                           100.0 * (row.cost.total / style1Cost - 1.0));
    t.addRow({row.exampleId, row.design, std::to_string(row.timeSteps),
              std::to_string(row.style), row.aluSummary,
              util::format("%.0f", row.cost.total),
              std::to_string(row.cost.regCount),
              std::to_string(row.cost.muxCount),
              std::to_string(row.cost.muxInputCount),
              util::format("%.2f", row.milliseconds), note});
    if (row.style == 2) t.addSeparator();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nTotal MFSA CPU time: %.1f ms (paper: < 400 ms per example on a 1992 "
      "SPARC-SLC).\nPaper's headline shape: style 2 costs 2-11%% more than "
      "style 1.\n",
      totalMs);
  return 0;
}
