// Reproduction of Table 1: "The MFS result for six examples" — the FU mix
// MFS settles on for each example at each time constraint, including the
// chaining (C), functional-pipelining (F) and structural-pipelining (S)
// variants, plus per-run CPU time (the paper reports < 0.2 s per example on
// a SPARC-SLC). The sweep itself lives in workloads::runTable1 so the tests
// can assert its shape.
#include <cstdio>

#include "util/strings.h"
#include "util/table.h"
#include "workloads/table_runner.h"

namespace {

std::string fuString(const std::map<mframe::dfg::FuType, int>& fus) {
  // The paper's notation: one symbol per unit, e.g. "**,+,-,>" for two
  // multipliers and one each of the rest.
  std::vector<std::string> parts;
  for (const auto& [t, n] : fus) {
    if (t == mframe::dfg::FuType::LoopUnit) continue;
    std::string p;
    for (int i = 0; i < n; ++i) p += std::string(mframe::dfg::fuTypeSymbol(t));
    parts.push_back(p);
  }
  return mframe::util::join(parts, ",");
}

}  // namespace

int main() {
  using namespace mframe;
  std::printf(
      "Table 1 reproduction — MFS FU allocation per example and time "
      "constraint.\nFeature column: 1 = unit-cycle ops, 2 = 2-cycle "
      "multiplies, C = chaining,\nF = functional pipelining (latency), S = "
      "structural pipelining.\n\n");

  const auto suite = workloads::paperSuite();
  std::map<std::string, std::string> featureOf;
  for (const auto& bc : suite) featureOf[bc.id] = bc.feature;

  util::Table t("MFS results (paper Table 1)");
  t.setHeader({"ex", "design", "feature", "variant", "T", "FU mix", "ms"});
  double totalMs = 0.0;
  std::string lastId;
  for (const auto& row : workloads::runTable1(suite)) {
    if (!lastId.empty() && row.exampleId != lastId) t.addSeparator();
    lastId = row.exampleId;
    totalMs += row.milliseconds;
    std::string cell = row.feasible ? fuString(row.fuCount) : "infeasible";
    if (row.feasible && !row.verified) cell += " [INVALID]";
    t.addRow({row.exampleId, row.design, featureOf[row.exampleId], row.variant,
              std::to_string(row.timeSteps), cell,
              util::format("%.2f", row.milliseconds)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nTotal MFS CPU time over the whole sweep: %.1f ms (paper: < 200 ms "
      "per example on a 1992 SPARC-SLC).\n",
      totalMs);
  return 0;
}
