// Runtime benchmarks (google-benchmark) backing the paper's Section-6
// claims: MFS < 0.2 s and MFSA < 0.4 s per example on a 1992 SPARC-SLC, and
// the Section-1 claim that "the main advantage of our methods over existing
// scheduling and allocation algorithms is in running time" — compared here
// against our force-directed and list-scheduling baselines, plus a scaling
// sweep on random DFGs (MFS is O(l^3) worst case).
#include <benchmark/benchmark.h>

#include "baseline/fds.h"
#include "baseline/list_sched.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "workloads/benchmarks.h"
#include "workloads/random_dfg.h"

namespace {

using namespace mframe;

const workloads::BenchmarkCase& suiteCase(std::size_t i) {
  static const auto suite = workloads::paperSuite();
  return suite[i];
}

void BM_MfsSuite(benchmark::State& state) {
  const auto& bc = suiteCase(static_cast<std::size_t>(state.range(0)));
  core::MfsOptions o;
  o.constraints = bc.constraints;
  o.constraints.timeSteps = bc.timeSweep.front();
  o.traceLiapunov = false;
  for (auto _ : state) {
    auto r = core::runMfs(bc.graph, o);
    benchmark::DoNotOptimize(r.feasible);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_MfsSuite)->DenseRange(0, 5);

void BM_MfsaSuite(benchmark::State& state) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto& bc = suiteCase(static_cast<std::size_t>(state.range(0)));
  core::MfsaOptions o;
  o.constraints = bc.constraints;
  o.constraints.timeSteps = bc.timeSweep.front();
  o.traceLiapunov = false;
  for (auto _ : state) {
    auto r = core::runMfsa(bc.graph, lib, o);
    benchmark::DoNotOptimize(r.feasible);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_MfsaSuite)->DenseRange(0, 5);

void BM_FdsDiffeq(benchmark::State& state) {
  const dfg::Dfg g = workloads::diffeq();
  sched::Constraints c;
  c.timeSteps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = baseline::runForceDirected(g, c);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_FdsDiffeq)->Arg(4)->Arg(8);

void BM_FdsEwf(benchmark::State& state) {
  const dfg::Dfg g = workloads::ewfLike();
  sched::Constraints c;
  c.timeSteps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = baseline::runForceDirected(g, c);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_FdsEwf)->Arg(17)->Arg(21)->Unit(benchmark::kMillisecond);

void BM_MfsEwf(benchmark::State& state) {
  const dfg::Dfg g = workloads::ewfLike();
  core::MfsOptions o;
  o.constraints.timeSteps = static_cast<int>(state.range(0));
  o.traceLiapunov = false;
  for (auto _ : state) {
    auto r = core::runMfs(g, o);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_MfsEwf)->Arg(17)->Arg(21);

void BM_ListSchedEwf(benchmark::State& state) {
  const dfg::Dfg g = workloads::ewfLike();
  sched::Constraints c;
  c.fuLimit[dfg::FuType::Adder] = 3;
  c.fuLimit[dfg::FuType::Multiplier] = 3;
  for (auto _ : state) {
    auto r = baseline::runListScheduling(g, c);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_ListSchedEwf);

// Scaling sweep: MFS runtime vs DFG size (the O(l^3) worst-case claim —
// expect mildly super-linear growth on layered random graphs).
void BM_MfsScaling(benchmark::State& state) {
  workloads::RandomDfgOptions o;
  o.seed = 42;
  o.numOps = static_cast<int>(state.range(0));
  o.layerWidth = 6;
  const dfg::Dfg g = workloads::randomDfg(o);
  sched::Constraints probe;
  const auto tf = sched::computeTimeFrames(g, probe);
  core::MfsOptions mo;
  mo.constraints.timeSteps = tf->criticalSteps() + 3;
  mo.traceLiapunov = false;
  for (auto _ : state) {
    auto r = core::runMfs(g, mo);
    benchmark::DoNotOptimize(r.feasible);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MfsScaling)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_MfsaScaling(benchmark::State& state) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  workloads::RandomDfgOptions o;
  o.seed = 42;
  o.numOps = static_cast<int>(state.range(0));
  o.layerWidth = 6;
  const dfg::Dfg g = workloads::randomDfg(o);
  sched::Constraints probe;
  const auto tf = sched::computeTimeFrames(g, probe);
  core::MfsaOptions mo;
  mo.constraints.timeSteps = tf->criticalSteps() + 3;
  mo.traceLiapunov = false;
  for (auto _ : state) {
    auto r = core::runMfsa(g, lib, mo);
    benchmark::DoNotOptimize(r.feasible);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MfsaScaling)->RangeMultiplier(2)->Range(16, 128)->Complexity();

}  // namespace

BENCHMARK_MAIN();
