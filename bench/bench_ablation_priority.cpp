// Ablation B — the priority rules of Section 3.2 and the multicycle
// refinement of Section 5.3: compare the paper's mobility rule (with
// reversal), the rule without reversal, and raw insertion order, over the
// suite and a batch of random DFGs. The metric is the total FU count of the
// balanced schedule (lower = better).
#include <cstdio>

#include "core/mfs.h"
#include "sched/verify.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/benchmarks.h"
#include "workloads/random_dfg.h"

namespace {

using namespace mframe;

int totalFu(const core::MfsResult& r) {
  int total = 0;
  for (const auto& [t, n] : r.fuCount) total += n;
  return total;
}

std::string runCell(const dfg::Dfg& g, const sched::Constraints& base, int cs,
                    sched::PriorityRule rule) {
  core::MfsOptions o;
  o.constraints = base;
  o.constraints.timeSteps = cs;
  o.priorityRule = rule;
  const auto r = core::runMfs(g, o);
  if (!r.feasible) return "inf";
  const bool ok = sched::verifySchedule(r.schedule, o.constraints).empty();
  return util::format("%d%s", totalFu(r), ok ? "" : "!");
}

}  // namespace

int main() {
  std::printf("Ablation: priority rules (total FU count; lower is better).\n"
              "mobility = the paper's rule incl. the Section-5.3 multicycle "
              "reversal;\nno-reverse = plain mobility; insertion = graph "
              "order (no intelligence).\n\n");

  util::Table t("Priority-rule ablation");
  t.setHeader({"design", "T", "mobility", "no-reverse", "insertion"});
  for (const auto& bc : workloads::paperSuite()) {
    const int cs = bc.timeSweep.front();
    t.addRow({bc.graph.name(), std::to_string(cs),
              runCell(bc.graph, bc.constraints, cs, sched::PriorityRule::Mobility),
              runCell(bc.graph, bc.constraints, cs,
                      sched::PriorityRule::MobilityNoReverse),
              runCell(bc.graph, bc.constraints, cs,
                      sched::PriorityRule::InsertionOrder)});
  }

  // Random multicycle-heavy graphs, where the reversal rule matters most.
  int winsMobility = 0, winsInsertion = 0, ties = 0;
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    workloads::RandomDfgOptions o;
    o.seed = seed;
    o.numOps = 32;
    o.mulPercent = 40;
    o.twoCyclePercent = 60;
    const dfg::Dfg g = workloads::randomDfg(o);
    sched::Constraints probe;
    const auto tf = sched::computeTimeFrames(g, probe);
    const int cs = tf->criticalSteps() + 2;

    core::MfsOptions mo;
    mo.constraints.timeSteps = cs;
    mo.priorityRule = sched::PriorityRule::Mobility;
    const auto rm = core::runMfs(g, mo);
    mo.priorityRule = sched::PriorityRule::InsertionOrder;
    const auto ri = core::runMfs(g, mo);
    if (!rm.feasible || !ri.feasible) continue;
    if (totalFu(rm) < totalFu(ri))
      ++winsMobility;
    else if (totalFu(ri) < totalFu(rm))
      ++winsInsertion;
    else
      ++ties;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Random 2-cycle-heavy DFGs (20 seeds): mobility wins %d, "
              "insertion wins %d, ties %d.\n",
              winsMobility, winsInsertion, ties);
  return 0;
}
