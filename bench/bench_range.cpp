// Interval-range-analysis benchmarks (google-benchmark): the abstract
// interpretation over the FSM x datapath product on the paper designs,
// scaling on large random DAGs (the per-state scan should stay near-linear
// in states x issues), and the worker-thread sweep for the parallel scan.
#include <benchmark/benchmark.h>

#include "analysis/range/range.h"
#include "baseline/asap_sched.h"
#include "celllib/ncr_like.h"
#include "rtl/controller.h"
#include "rtl/datapath.h"
#include "rtl/microcode.h"
#include "workloads/benchmarks.h"
#include "workloads/random_dfg.h"

namespace {

using namespace mframe;

dfg::Dfg bigRandom(int ops) {
  workloads::RandomDfgOptions opt;
  opt.seed = 42;
  opt.numOps = ops;
  opt.numInputs = 8;
  opt.layerWidth = 8;
  opt.twoCyclePercent = 20;
  return workloads::randomDfg(opt);
}

/// The analysis's input triple, synthesized once outside the timed loop.
struct Synthesized {
  rtl::Datapath datapath;
  rtl::ControllerFsm fsm;
  rtl::MicrocodeRom rom;
};

Synthesized synthesize(const dfg::Dfg& g) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto asap = baseline::runAsap(g, {});
  Synthesized s{rtl::buildDatapath(g, lib, asap.schedule,
                                   rtl::bindByColumns(g, lib, asap.schedule)),
                {},
                {}};
  s.fsm = rtl::buildController(s.datapath);
  s.rom = rtl::buildMicrocode(s.datapath, s.fsm);
  return s;
}

// Full range analysis on one paper design.
void BM_RangeSuite(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  const Synthesized s = synthesize(bc.graph);
  for (auto _ : state) {
    const auto r = analysis::range::analyzeDesignRanges(s.datapath, s.fsm,
                                                        s.rom);
    benchmark::DoNotOptimize(r.statesInterpreted);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_RangeSuite)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

// Scaling: range analysis of random designs from 100 to 5000 operations.
void BM_RangeScaling(benchmark::State& state) {
  const Synthesized s = synthesize(bigRandom(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    const auto r = analysis::range::analyzeDesignRanges(s.datapath, s.fsm,
                                                        s.rom);
    benchmark::DoNotOptimize(r.statesInterpreted);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RangeScaling)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

// Worker sweep for the parallel per-state scan on the 5000-op design; the
// report is jobs-invariant, so only wall clock may move.
void BM_RangeJobs(benchmark::State& state) {
  static const Synthesized s = synthesize(bigRandom(5000));
  analysis::range::RangeOptions opt;
  opt.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto r = analysis::range::analyzeDesignRanges(s.datapath, s.fsm,
                                                        s.rom, opt);
    benchmark::DoNotOptimize(r.statesInterpreted);
  }
}
BENCHMARK(BM_RangeJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
