// Extended-suite sweep (beyond the paper's six examples): the FDCT-like and
// IIR designs through MFS and MFSA, plus the functional-pipelining
// throughput curve (latency vs achieved FU demand vs the analytic lower
// bound) for the DSP workloads — the trade-off Section 5.5.2's balancing is
// for.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "pipeline/analysis.h"
#include "rtl/verify.h"
#include "sched/report.h"
#include "sched/verify.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

namespace {

using namespace mframe;

std::string fuString(const std::map<dfg::FuType, int>& fus) {
  std::vector<std::string> parts;
  for (const auto& [t, n] : fus) {
    std::string p;
    for (int i = 0; i < n; ++i) p += std::string(dfg::fuTypeSymbol(t));
    parts.push_back(p);
  }
  return util::join(parts, ",");
}

}  // namespace

int main() {
  const celllib::CellLibrary lib = celllib::ncrLike();

  // -- MFS + MFSA on the extended designs -----------------------------------
  util::Table t("Extended workloads — MFS and MFSA");
  t.setHeader({"design", "T", "MFS FU mix", "util peak reg", "MFSA ALUs",
               "cost um^2", "check"});
  struct Case {
    dfg::Dfg g;
    std::vector<int> sweep;
  };
  const Case cases[] = {{workloads::fdctLike(), {6, 8, 10}},
                        {workloads::iirBiquads(), {11, 13, 16}},
                        {workloads::dct2d4x4(), {6, 10, 16}}};
  for (const auto& c : cases) {
    for (int cs : c.sweep) {
      core::MfsOptions mo;
      mo.constraints.timeSteps = cs;
      const auto mfs = core::runMfs(c.g, mo);
      core::MfsaOptions ao;
      ao.constraints.timeSteps = cs;
      const auto mfsa = core::runMfsa(c.g, lib, ao);
      if (!mfs.feasible || !mfsa.feasible) {
        t.addRow({c.g.name(), std::to_string(cs), "infeasible"});
        continue;
      }
      const bool ok =
          sched::verifySchedule(mfs.schedule, mo.constraints).empty() &&
          rtl::verifyDatapath(mfsa.datapath, ao.constraints,
                              rtl::DesignStyle::Unrestricted)
              .empty();
      const auto rep = sched::analyzeSchedule(mfs.schedule);
      t.addRow({c.g.name(), std::to_string(cs), fuString(mfs.fuCount),
                std::to_string(rep.peakLive), mfsa.datapath.aluSummary(),
                util::format("%.0f", mfsa.cost.total), ok ? "ok" : "INVALID"});
    }
    t.addSeparator();
  }
  std::printf("%s\n", t.render().c_str());

  // -- functional-pipelining throughput curves -------------------------------
  for (const auto* name : {"fir8", "fdct"}) {
    const dfg::Dfg g =
        std::string(name) == "fir8" ? workloads::fir8() : workloads::fdctLike();
    const int cs = 10;
    util::Table lt(util::format(
        "%s: latency vs multiplier demand (folded MFS, T=%d)", name, cs));
    lt.setHeader({"L", "feasible", "multipliers", "lower bound", "adders"});
    for (const auto& p : pipeline::latencySweep(g, cs)) {
      if (!p.feasible) {
        lt.addRow({std::to_string(p.latency), "no"});
        continue;
      }
      lt.addRow({std::to_string(p.latency), "yes",
                 std::to_string(p.fuCount.count(dfg::FuType::Multiplier)
                                    ? p.fuCount.at(dfg::FuType::Multiplier)
                                    : 0),
                 std::to_string(p.lowerBound.at(dfg::FuType::Multiplier)),
                 std::to_string(p.fuCount.count(dfg::FuType::Adder)
                                    ? p.fuCount.at(dfg::FuType::Adder)
                                    : 0)});
    }
    std::printf("%s\n", lt.render().c_str());
  }
  std::printf("Shape: achieved demand tracks the ceil(work/L) lower bound and "
              "falls monotonically as the initiation interval grows.\n");
  return 0;
}
