// Scale benchmarks (google-benchmark) for the arena/CSR DFG core: build,
// schedule, synthesize and analyze 10^4-10^5-op NN-shaped random DAGs. The
// committed numbers in BENCH_runtime.json are the evidence for the ISSUE-10
// acceptance bound — `synth` + `analyze` on a 100k-op DAG in single-digit
// seconds — and the per-run counters expose any super-linear regression:
// mfsa.commits must stay ~= ops and dfg.csrEdges ~= edges.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <utility>

#include "analysis/analyze.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "sched/timeframes.h"
#include "trace/trace.h"
#include "workloads/random_dfg.h"

namespace {

using namespace mframe;

dfg::Dfg scaleGraph(workloads::DfgTopology topo, int ops) {
  workloads::RandomDfgOptions opt;
  opt.topology = topo;
  opt.numOps = ops;
  opt.layerWidth = 64;
  opt.numInputs = 8;
  opt.seed = 42;
  return workloads::randomDfg(opt);
}

// Cache the big graphs across benchmarks: generation is benchmarked once
// explicitly (BM_ScaleBuild) and would otherwise dominate setup time.
const dfg::Dfg& cachedGraph(workloads::DfgTopology topo, int ops) {
  static std::map<std::pair<int, int>, dfg::Dfg> cache;
  auto key = std::make_pair(static_cast<int>(topo), ops);
  auto it = cache.find(key);
  if (it == cache.end())
    it = cache.emplace(key, scaleGraph(topo, ops)).first;
  return it->second;
}

constexpr workloads::DfgTopology kTopos[] = {
    workloads::DfgTopology::Conv, workloads::DfgTopology::Lstm,
    workloads::DfgTopology::Transformer};

// Graph construction + eager freeze (CSR build) itself.
void BM_ScaleBuild(benchmark::State& state) {
  const auto topo = kTopos[static_cast<std::size_t>(state.range(0))];
  const int ops = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const dfg::Dfg g = scaleGraph(topo, ops);
    benchmark::DoNotOptimize(g.size());
  }
  state.SetComplexityN(ops);
}
BENCHMARK(BM_ScaleBuild)
    ->ArgsProduct({{0, 1, 2}, {10000, 100000}})
    ->Unit(benchmark::kMillisecond);

// MFS under resource constraints: minimize latency on the 100k conv graph.
void BM_ScaleMfs(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const dfg::Dfg& g = cachedGraph(workloads::DfgTopology::Conv, ops);
  core::MfsOptions o;
  o.mode = core::MfsLiapunov::Mode::ResourceConstrained;
  o.traceLiapunov = false;
  for (auto _ : state) {
    auto r = core::runMfs(g, o);
    benchmark::DoNotOptimize(r.feasible);
  }
  state.counters["ops"] = ops;
}
BENCHMARK(BM_ScaleMfs)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

// MFSA at the design's critical path: the full mixed scheduling-allocation
// loop (frontier move-frame search, O(1) mux arrangement maintenance).
void BM_ScaleMfsa(benchmark::State& state) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto topo = kTopos[static_cast<std::size_t>(state.range(0))];
  const int ops = static_cast<int>(state.range(1));
  const dfg::Dfg& g = cachedGraph(topo, ops);
  core::MfsaOptions o;
  sched::Constraints probe;
  o.constraints.timeSteps = sched::computeTimeFrames(g, probe)->criticalSteps();
  o.traceLiapunov = false;
  // trace::bump is gated; without this the commitsPerOp counter reads 0.
  const bool countersWereOn = trace::countersEnabled();
  trace::enableCounters(true);
  const std::uint64_t c0 = trace::counterValue(trace::Counter::MfsaCommits);
  for (auto _ : state) {
    auto r = core::runMfsa(g, lib, o);
    benchmark::DoNotOptimize(r.feasible);
  }
  // ~1 commit per op per run proves the pass stayed restart-free linear.
  state.counters["commitsPerOp"] = static_cast<double>(
      trace::counterValue(trace::Counter::MfsaCommits) - c0) /
      (static_cast<double>(state.iterations()) * ops);
  trace::enableCounters(countersWereOn);
}
BENCHMARK(BM_ScaleMfsa)
    ->ArgsProduct({{0, 1, 2}, {10000}})
    ->Args({0, 100000})
    ->Unit(benchmark::kMillisecond);

// The full `mframe analyze` pipeline: dataflow lint + schedule + bind + STA.
void BM_ScaleAnalyze(benchmark::State& state) {
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const int ops = static_cast<int>(state.range(0));
  const dfg::Dfg& g = cachedGraph(workloads::DfgTopology::Conv, ops);
  for (auto _ : state) {
    const auto r = analysis::analyzeDesign(g, lib, {});
    benchmark::DoNotOptimize(r.report.size());
  }
  state.counters["ops"] = ops;
}
BENCHMARK(BM_ScaleAnalyze)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
