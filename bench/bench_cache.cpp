// Synthesis-cache benchmarks (google-benchmark): cold engine runs vs warm
// cache replay on the paper designs (the first hit per key pays disk +
// rehost + full verification; the steady state these loops measure is the
// in-process memo of verified results plus the content fingerprint that
// guards it — the honest repeat-hit cost of an iterative flow), plus a
// Zipf-distributed replay over a pool of random designs — the access
// pattern of an iterative sweep that keeps revisiting its popular
// configurations.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <vector>

#include "cache/resynth.h"
#include "cache/store.h"
#include "celllib/ncr_like.h"
#include "core/mfs.h"
#include "core/mfsa.h"
#include "workloads/benchmarks.h"
#include "workloads/random_dfg.h"

namespace {

using namespace mframe;

/// A SynthCache on a scratch directory, installed process-wide for the
/// benchmark's lifetime and wiped on construction so every "cold" claim
/// starts from an empty store.
struct ScratchCache {
  ScratchCache() {
    dir = (std::filesystem::temp_directory_path() / "mframe_bench_cache")
              .string();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    cache = std::make_unique<cache::SynthCache>(dir);
    cache::setActiveCache(cache.get());
  }
  ~ScratchCache() {
    cache::setActiveCache(nullptr);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  std::string dir;
  std::unique_ptr<cache::SynthCache> cache;
};

core::MfsOptions suiteMfsOptions(const workloads::BenchmarkCase& bc) {
  core::MfsOptions o;
  o.constraints = bc.constraints;
  o.constraints.timeSteps = bc.timeSweep.front();
  o.traceLiapunov = false;
  return o;
}

// Cold MFS: the full Liapunov scheduling engine, no cache installed.
void BM_MfsCold(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  const core::MfsOptions o = suiteMfsOptions(bc);
  for (auto _ : state) {
    const auto r = core::runMfs(bc.graph, o);
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_MfsCold)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

// Warm MFS: the same request replayed from a populated cache. The ratio
// against BM_MfsCold is the headline number (ISSUE 8 asks for >= 10x).
void BM_MfsWarm(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  const core::MfsOptions o = suiteMfsOptions(bc);
  ScratchCache scratch;
  (void)cache::cachedRunMfs(bc.graph, o);  // populate
  for (auto _ : state) {
    const auto r = cache::cachedRunMfs(bc.graph, o);
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_MfsWarm)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

// Cold vs warm for the full mixed scheduling-allocation pipeline; the warm
// path re-verifies the datapath and re-evaluates cost, so it is dearer than
// MFS replay but still far from a fresh Liapunov descent.
void BM_MfsaCold(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  core::MfsaOptions o;
  o.constraints = bc.constraints;
  o.constraints.timeSteps = bc.timeSweep.front();
  o.traceLiapunov = false;
  for (auto _ : state) {
    const auto r = core::runMfsa(bc.graph, lib, o);
    benchmark::DoNotOptimize(r.feasible);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_MfsaCold)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

void BM_MfsaWarm(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  core::MfsaOptions o;
  o.constraints = bc.constraints;
  o.constraints.timeSteps = bc.timeSweep.front();
  o.traceLiapunov = false;
  ScratchCache scratch;
  (void)cache::cachedRunMfsa(bc.graph, lib, o);  // populate
  for (auto _ : state) {
    const auto r = cache::cachedRunMfsa(bc.graph, lib, o);
    benchmark::DoNotOptimize(r.feasible);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_MfsaWarm)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

/// A pool of random designs with a Zipf(s=1) popularity rank: design k is
/// requested with probability proportional to 1/(k+1). An iterative flow
/// hammers a few hot configurations and occasionally touches the long tail.
std::vector<dfg::Dfg> designPool(int n) {
  std::vector<dfg::Dfg> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workloads::RandomDfgOptions opt;
    opt.seed = 1000 + i;
    opt.numOps = 60;
    opt.numInputs = 6;
    opt.layerWidth = 6;
    pool.push_back(workloads::randomDfg(opt));
  }
  return pool;
}

// Zipf replay over a pre-populated pool: ~hit-rate-weighted mix of replay
// and (rare) engine work. Counters report the achieved hit rate.
void BM_ZipfReplay(benchmark::State& state) {
  const int poolSize = static_cast<int>(state.range(0));
  static const std::vector<dfg::Dfg> pool = designPool(32);
  ScratchCache scratch;
  core::MfsOptions o;
  o.constraints.timeSteps = 8;
  for (int i = 0; i < poolSize; ++i) (void)cache::cachedRunMfs(pool[i], o);

  std::mt19937 rng(7);
  std::vector<double> weights;
  for (int k = 0; k < poolSize; ++k) weights.push_back(1.0 / (k + 1));
  std::discrete_distribution<int> zipf(weights.begin(), weights.end());

  for (auto _ : state) {
    const auto r = cache::cachedRunMfs(pool[static_cast<std::size_t>(
                                           zipf(rng))],
                                       o);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(BM_ZipfReplay)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
