// Ablation A — the weighted Liapunov function of Section 4.1:
// "wTIME = wALU = wMUX = wREG = 1 gives an overall optimizer without
// emphasising any particular factor"; here we sweep emphasis onto each
// factor in turn and report how the MFSA design shifts.
#include <cstdio>

#include "celllib/ncr_like.h"
#include "core/mfsa.h"
#include "rtl/verify.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

int main() {
  using namespace mframe;
  const celllib::CellLibrary lib = celllib::ncrLike();

  struct Variant {
    const char* name;
    core::MfsaWeights w;
  };
  const Variant variants[] = {
      {"balanced (1,1,1,1)", {1, 1, 1, 1}},
      {"ALU-heavy (w_ALU=10)", {1, 10, 1, 1}},
      {"MUX-heavy (w_MUX=10)", {1, 1, 10, 1}},
      {"REG-heavy (w_REG=10)", {1, 1, 1, 10}},
      {"hardware-only (w_TIME=0.01)", {0.01, 1, 1, 1}},
  };

  std::printf("Ablation: MFSA Liapunov weight emphasis (Section 4.1).\n\n");
  for (const auto* name : {"diffeq", "ewf"}) {
    const dfg::Dfg g =
        std::string(name) == "diffeq" ? workloads::diffeq() : workloads::ewfLike();
    const int cs = std::string(name) == "diffeq" ? 5 : 18;

    util::Table t(util::format("%s at T=%d", name, cs));
    t.setHeader({"weights", "ALUs", "alu um^2", "REG", "MUX", "MUXin",
                 "total um^2", "check"});
    for (const Variant& v : variants) {
      core::MfsaOptions o;
      o.constraints.timeSteps = cs;
      o.weights = v.w;
      const auto r = core::runMfsa(g, lib, o);
      if (!r.feasible) {
        t.addRow({v.name, "infeasible: " + r.error});
        continue;
      }
      const auto bad = rtl::verifyDatapath(r.datapath, o.constraints,
                                           rtl::DesignStyle::Unrestricted);
      t.addRow({v.name, r.datapath.aluSummary(),
                util::format("%.0f", r.cost.aluArea),
                std::to_string(r.cost.regCount), std::to_string(r.cost.muxCount),
                std::to_string(r.cost.muxInputCount),
                util::format("%.0f", r.cost.total),
                bad.empty() ? "ok" : "INVALID"});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf("Expected shape: emphasising a factor shifts cost out of that "
              "column (fewer/cheaper ALUs, fewer mux inputs, or fewer "
              "registers) at the expense of the others.\n");
  return 0;
}
