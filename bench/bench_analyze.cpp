// Dataflow/timing analysis benchmarks (google-benchmark): the fixpoint
// engine on the paper designs and on large random DAGs (is the worklist
// really near-linear?), plus the full analyzeDesign orchestration — lint,
// schedule, bind, STA — as the user pays for it in `mframe analyze`.
#include <benchmark/benchmark.h>

#include "analysis/analyze.h"
#include "analysis/dataflow/analyze.h"
#include "celllib/ncr_like.h"
#include "workloads/benchmarks.h"
#include "workloads/random_dfg.h"

namespace {

using namespace mframe;

dfg::Dfg bigRandom(int ops) {
  workloads::RandomDfgOptions opt;
  opt.seed = 42;
  opt.numOps = ops;
  opt.numInputs = 8;
  opt.layerWidth = 8;
  opt.twoCyclePercent = 20;
  return workloads::randomDfg(opt);
}

// The four dataflow passes plus OPT reporting on one paper design.
void BM_DataflowSuite(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const auto r = analysis::dataflow::lintDataflow(bc.graph);
    benchmark::DoNotOptimize(r.engineVisits);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_DataflowSuite)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

// Engine scaling: fixpoint over random DAGs from 100 to 5000 operations.
void BM_DataflowScaling(benchmark::State& state) {
  const dfg::Dfg g = bigRandom(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto r = analysis::dataflow::lintDataflow(g);
    benchmark::DoNotOptimize(r.engineVisits);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DataflowScaling)
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

// End-to-end `mframe analyze`: dataflow + MFS schedule + binding + STA.
void BM_AnalyzeDesign(benchmark::State& state) {
  static const auto suite = workloads::paperSuite();
  static const celllib::CellLibrary lib = celllib::ncrLike();
  const auto& bc = suite[static_cast<std::size_t>(state.range(0))];
  analysis::AnalyzeOptions opts;
  opts.constraints = bc.constraints;
  opts.constraints.clockNs = 200.0;
  opts.clockSet = true;
  for (auto _ : state) {
    const auto r = analysis::analyzeDesign(bc.graph, lib, opts);
    benchmark::DoNotOptimize(r.timing.worstSlackNs);
  }
  state.SetLabel(bc.graph.name());
}
BENCHMARK(BM_AnalyzeDesign)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

// STA alone on a dense chained datapath: the slowchain shape scaled up.
void BM_StaChained(benchmark::State& state) {
  workloads::RandomDfgOptions opt;
  opt.seed = 7;
  opt.numOps = static_cast<int>(state.range(0));
  opt.numInputs = 6;
  opt.layerWidth = 4;
  opt.randomDelays = true;
  const dfg::Dfg g = workloads::randomDfg(opt);
  static const celllib::CellLibrary lib = celllib::ncrLike();
  analysis::AnalyzeOptions opts;
  opts.constraints.allowChaining = true;
  opts.constraints.clockNs = 100.0;
  opts.clockSet = true;
  opts.dataflow = {};
  for (auto _ : state) {
    const auto r = analysis::analyzeDesign(g, lib, opts);
    benchmark::DoNotOptimize(r.timing.maxChainDepth);
  }
}
BENCHMARK(BM_StaChained)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
